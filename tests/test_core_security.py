"""Tests for the security application built on Scotch visibility."""

import pytest

from repro.core.config import ScotchConfig
from repro.core.security import BLOCK, PRIORITY_MITIGATION, SecurityApp
from repro.metrics import client_flow_failure_fraction
from repro.testbed.deployment import build_deployment
from repro.traffic import NewFlowSource, SpoofedFlood


def build(mitigation="report", seed=61, **kwargs):
    dep = build_deployment(seed=seed, racks=2, mesh_per_rack=1)
    app = SecurityApp(dep.overlay, mitigation=mitigation, **kwargs)
    dep.controller.add_app(app)
    return dep, app


def test_no_reports_without_attack():
    dep, app = build()
    client = NewFlowSource(dep.sim, dep.client, dep.servers[0].ip, rate_fps=100.0)
    client.start(at=0.5, stop_at=8.0)
    dep.sim.run(until=10.0)
    assert app.reports == []


def test_spoofed_flood_detected_with_attribution():
    dep, app = build()
    flood = SpoofedFlood(dep.sim, dep.attacker, dep.servers[0].ip, rate_fps=2000.0)
    flood.start(at=1.0, stop_at=10.0)
    dep.sim.run(until=12.0)
    assert app.reports
    report = app.reports[0]
    # Attribution survives the overlay detour: the report names the
    # edge switch and the attacker's real ingress port.
    assert report.switch == "edge"
    assert report.port == dep.network.port_between("edge", "attacker")
    assert report.top_destination == dep.servers[0].ip
    assert report.spoofing_suspected  # fresh source per packet
    assert report.new_flow_rate > 500


def test_flash_crowd_not_flagged_as_spoofed():
    """High rate from few repeat sources: detected, but not spoofing."""
    dep, app = build()
    crowd = NewFlowSource(dep.sim, dep.attacker, dep.servers[0].ip,
                          rate_fps=1500.0, src_net=30, source_pool=20)
    crowd.start(at=1.0, stop_at=8.0)
    dep.sim.run(until=10.0)
    assert app.reports
    assert not app.reports[0].spoofing_suspected
    assert app.reports[0].distinct_sources <= 20


def test_block_mitigation_sheds_flood_in_data_plane():
    dep, app = build(mitigation=BLOCK, seed=62)
    sim = dep.sim
    server_ip = dep.servers[0].ip
    flood = SpoofedFlood(sim, dep.attacker, server_ip, rate_fps=2000.0)
    client = NewFlowSource(sim, dep.client, server_ip, rate_fps=100.0)
    flood.start(at=1.0, stop_at=20.0)
    client.start(at=0.5, stop_at=20.0)
    sim.run(until=22.0)
    assert app.mitigations_installed >= 1
    # The drop rule exists at the edge switch.
    rules = [e for e in dep.edge.datapath.table(0).entries()
             if e.priority == PRIORITY_MITIGATION]
    assert len(rules) == 1
    assert rules[0].packets > 1000  # the flood is dying in hardware
    # The clean-port client is unaffected (its port is not blocked).
    failure = client_flow_failure_fraction(
        dep.client.sent_tap, dep.servers[0].recv_tap, start=8.0, end=19.0
    )
    assert failure < 0.05


def test_mitigation_not_repeated_for_same_target():
    dep, app = build(mitigation=BLOCK, seed=62)
    flood = SpoofedFlood(dep.sim, dep.attacker, dep.servers[0].ip, rate_fps=2000.0)
    flood.start(at=1.0, stop_at=15.0)
    dep.sim.run(until=17.0)
    # One detection, one block — after which the flood dies in the data
    # plane, Packet-Ins stop, and no further reports (or blocks) fire.
    assert app.mitigations_installed == 1
    assert len(app.reports) == 1
    assert app.reports[0].mitigated


def test_attack_callback_invoked():
    seen = []
    dep = build_deployment(seed=63)
    app = SecurityApp(dep.overlay, on_attack=seen.append)
    dep.controller.add_app(app)
    flood = SpoofedFlood(dep.sim, dep.attacker, dep.servers[0].ip, rate_fps=1500.0)
    flood.start(at=1.0, stop_at=6.0)
    dep.sim.run(until=8.0)
    assert seen and seen[0].switch == "edge"


def test_parameter_validation():
    dep = build_deployment(seed=61)
    with pytest.raises(ValueError):
        SecurityApp(dep.overlay, mitigation="nuke")
    with pytest.raises(ValueError):
        SecurityApp(dep.overlay, interval=0)
