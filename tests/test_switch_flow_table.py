"""Tests for the flow table, including an index-vs-naive-scan property test."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.net.flow import FlowKey
from repro.net.packet import MplsHeader, Packet
from repro.switch.actions import Drop, Output
from repro.switch.flow_table import FlowEntry, FlowTable, TableFullError
from repro.switch.match import Match, extract_fields


def packet_for(key, label=None):
    packet = Packet(key.src_ip, key.dst_ip, proto=key.proto,
                    src_port=key.src_port, dst_port=key.dst_port)
    if label is not None:
        packet.push(MplsHeader(label))
    return packet


KEY = FlowKey("1.1.1.1", "2.2.2.2", 6, 10, 80)


def entry(match, priority=100, **kwargs):
    return FlowEntry(match, priority, [Output(1)], **kwargs)


def test_exact_match_lookup():
    table = FlowTable()
    table.insert(entry(Match.for_flow(KEY)))
    assert table.lookup(packet_for(KEY), 1, now=0.0) is not None
    other = FlowKey("9.9.9.9", "2.2.2.2", 6, 10, 80)
    assert table.lookup(packet_for(other), 1, now=0.0) is None


def test_higher_priority_wins():
    table = FlowTable()
    low = entry(Match.any(), priority=1)
    high = entry(Match(dst_ip=KEY.dst_ip), priority=50)
    table.insert(low)
    table.insert(high)
    assert table.lookup(packet_for(KEY), 1, 0.0) is high


def test_priority_tie_broken_by_age():
    table = FlowTable()
    older = entry(Match(dst_ip=KEY.dst_ip), priority=10)
    newer = entry(Match(src_ip=KEY.src_ip), priority=10)
    table.insert(older)
    table.insert(newer)
    assert table.lookup(packet_for(KEY), 1, 0.0) is older


def test_indexed_beats_lower_priority_wild():
    table = FlowTable()
    wild = entry(Match.any(), priority=1)
    exact = entry(Match.for_flow(KEY), priority=100)
    table.insert(wild)
    table.insert(exact)
    assert table.lookup(packet_for(KEY), 1, 0.0) is exact


def test_wild_beats_lower_priority_indexed():
    table = FlowTable()
    exact = entry(Match.for_flow(KEY), priority=10)
    tunnel = entry(Match(mpls_label=5), priority=3000)
    table.insert(exact)
    table.insert(tunnel)
    assert table.lookup(packet_for(KEY, label=5), 1, 0.0) is tunnel
    assert table.lookup(packet_for(KEY), 1, 0.0) is exact


def test_label_qualified_indexed_entry():
    """Five-tuple + mpls_label entries live in the index but only match
    labelled packets."""
    table = FlowTable()
    qualified = entry(Match(mpls_label=7, **Match.for_flow(KEY).fields), priority=101)
    plain = entry(Match.for_flow(KEY), priority=100)
    table.insert(qualified)
    table.insert(plain)
    assert table.lookup(packet_for(KEY, label=7), 1, 0.0) is qualified
    assert table.lookup(packet_for(KEY), 1, 0.0) is plain


def test_same_match_and_priority_replaces():
    table = FlowTable()
    table.insert(entry(Match.for_flow(KEY)))
    replacement = entry(Match.for_flow(KEY))
    table.insert(replacement)
    assert len(table) == 1
    assert table.lookup(packet_for(KEY), 1, 0.0) is replacement


def test_capacity_enforced():
    table = FlowTable(capacity=2)
    table.insert(entry(Match.for_flow(KEY)))
    table.insert(entry(Match(dst_ip="3.3.3.3")))
    with pytest.raises(TableFullError):
        table.insert(entry(Match(dst_ip="4.4.4.4")))


def test_replacement_allowed_at_capacity():
    table = FlowTable(capacity=1)
    table.insert(entry(Match.for_flow(KEY)))
    table.insert(entry(Match.for_flow(KEY)))  # replace, not grow
    assert len(table) == 1


def test_idle_timeout_expiry():
    table = FlowTable()
    table.insert(entry(Match.for_flow(KEY), idle_timeout=5.0), now=0.0)
    assert table.lookup(packet_for(KEY), 1, now=4.0) is not None  # refreshes idle
    assert table.lookup(packet_for(KEY), 1, now=8.0) is not None  # 4s idle
    assert table.lookup(packet_for(KEY), 1, now=20.0) is None
    assert len(table) == 0


def test_hard_timeout_expiry_despite_hits():
    table = FlowTable()
    table.insert(entry(Match.for_flow(KEY), hard_timeout=5.0), now=0.0)
    assert table.lookup(packet_for(KEY), 1, now=4.0) is not None
    assert table.lookup(packet_for(KEY), 1, now=5.0) is None


def test_expire_sweep():
    table = FlowTable()
    table.insert(entry(Match.for_flow(KEY), idle_timeout=1.0), now=0.0)
    table.insert(entry(Match(dst_ip="3.3.3.3"), idle_timeout=1.0), now=0.0)
    expired = table.expire(now=2.0)
    assert len(expired) == 2
    assert len(table) == 0


def test_remove_by_match_and_priority():
    table = FlowTable()
    table.insert(entry(Match.for_flow(KEY), priority=100))
    table.insert(entry(Match.for_flow(KEY), priority=101))
    assert table.remove(Match.for_flow(KEY), priority=100) == 1
    assert len(table) == 1
    assert table.remove(Match.for_flow(KEY)) == 1


def test_remove_where():
    table = FlowTable()
    table.insert(entry(Match.for_flow(KEY), cookie="a"))
    table.insert(entry(Match(dst_ip="3.3.3.3"), cookie="b"))
    assert table.remove_where(lambda e: e.cookie == "a") == 1
    assert len(table) == 1


def test_counters_updated_on_hit():
    table = FlowTable()
    rule = entry(Match.for_flow(KEY))
    table.insert(rule)
    packet = packet_for(KEY)
    packet.count = 3
    table.lookup(packet, 1, 0.0)
    assert rule.packets == 3
    assert rule.bytes == 3 * packet.size
    assert table.hits == 1
    assert table.lookups == 1


def test_zero_size_len_tracking():
    table = FlowTable()
    e = entry(Match.for_flow(KEY))
    table.insert(e)
    table.remove(Match.for_flow(KEY))
    assert len(table) == 0
    table.insert(entry(Match.for_flow(KEY)))
    assert len(table) == 1


# ----------------------------------------------------------------------
# Property test: the indexed lookup equals a naive highest-priority scan.
# ----------------------------------------------------------------------
def naive_lookup(entries, packet, in_port):
    fields = extract_fields(packet, in_port)
    best = None
    for e in entries:
        if e.match.matches(fields):
            if best is None or (e.priority, -e.entry_id) > (best.priority, -best.entry_id):
                best = e
    return best


addresses = st.sampled_from(["1.1.1.1", "2.2.2.2", "3.3.3.3"])
ports = st.integers(min_value=1, max_value=3)
labels = st.one_of(st.none(), st.integers(min_value=1, max_value=3))


@st.composite
def match_strategy(draw):
    fields = {}
    if draw(st.booleans()):
        fields["src_ip"] = draw(addresses)
    if draw(st.booleans()):
        fields["dst_ip"] = draw(addresses)
    if draw(st.booleans()):
        fields["src_port"] = draw(ports)
        fields["dst_port"] = draw(ports)
        fields["proto"] = 6
        fields.setdefault("src_ip", draw(addresses))
        fields.setdefault("dst_ip", draw(addresses))
    if draw(st.booleans()):
        fields["mpls_label"] = draw(st.integers(min_value=1, max_value=3))
    if draw(st.booleans()):
        fields["in_port"] = draw(ports)
    return Match(**fields)


@given(
    st.lists(st.tuples(match_strategy(), st.integers(min_value=1, max_value=5)),
             max_size=15),
    addresses, addresses, ports, ports, labels, ports,
)
@settings(max_examples=200, deadline=None)
def test_indexed_lookup_equals_naive_scan(rules, src, dst, sport, dport, label, in_port):
    table = FlowTable()
    entries = []
    for match, priority in rules:
        e = FlowEntry(match, priority, [Drop()])
        existing = [x for x in entries if x.match == match and x.priority == priority]
        for x in existing:
            entries.remove(x)
        entries.append(e)
        table.insert(e)
    packet = Packet(src, dst, proto=6, src_port=sport, dst_port=dport)
    if label is not None:
        packet.push(MplsHeader(label))
    expected = naive_lookup(entries, packet, in_port)
    got = table.lookup(packet, in_port, now=0.0)
    if expected is None:
        assert got is None
    else:
        assert got is expected
