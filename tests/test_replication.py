"""Tests for the multi-seed replication helper — and the claim the
benches rely on implicitly: the reproduced quantities are stable across
seeds (small coefficient of variation)."""

import pytest

pytestmark = pytest.mark.slow

from repro.switch.profiles import PICA8_PRONTO_3780
from repro.testbed.experiments import fig3_point, fig9_point, replicate


def test_replicate_summarizes():
    result = replicate(lambda seed: float(seed), seeds=(1, 2, 3))
    assert result.values == [1.0, 2.0, 3.0]
    assert result.mean == pytest.approx(2.0)
    assert result.std == pytest.approx(1.0)
    assert result.spread == pytest.approx(0.5)


def test_fig3_point_stable_across_seeds():
    result = replicate(
        lambda seed: fig3_point(PICA8_PRONTO_3780, 2000, duration=4.0, seed=seed),
        seeds=(1, 2, 3),
    )
    assert result.mean > 0.9
    assert result.spread < 0.05


def test_fig9_point_stable_across_seeds():
    result = replicate(
        lambda seed: fig9_point(800, duration=3.0, seed=seed), seeds=(1, 2, 3)
    )
    assert 550 < result.mean < 700
    assert result.spread < 0.05


def test_zero_mean_spread_defined():
    result = replicate(lambda seed: 0.0, seeds=(1, 2))
    assert result.spread == 0.0
