"""Observability must not perturb the simulation.

Two contracts:

* Same seed + fresh tracer => byte-identical exported JSONL traces
  (the trace is as reproducible as the run).
* Tracing/metrics on vs off => identical experiment results (observing
  the control path must not change it).  The sampler is excluded — it
  adds daemon events by design, which is why it is opt-in.
"""

import pytest

pytestmark = pytest.mark.slow

from contextlib import nullcontext

from repro.metrics import client_flow_failure_fraction
from repro.obs import Observability, observed
from repro.testbed.deployment import build_deployment
from repro.traffic import NewFlowSource, SpoofedFlood


def run(seed, obs=None):
    """One deployment-scale flood run, optionally observed."""
    with observed(obs) if obs is not None else nullcontext():
        dep = build_deployment(seed=seed, racks=2, mesh_per_rack=1)
        sim = dep.sim
        server_ip = dep.servers[0].ip
        client = NewFlowSource(sim, dep.client, server_ip, rate_fps=100.0)
        attack = SpoofedFlood(sim, dep.attacker, server_ip, rate_fps=1500.0)
        client.start(at=0.5, stop_at=6.0)
        attack.start(at=1.0, stop_at=6.0)
        sim.run(until=8.0)
    app = dep.scotch
    return {
        "counts": app.flow_db.counts(),
        "client_failure": client_flow_failure_fraction(
            dep.client.sent_tap, dep.servers[0].recv_tap
        ),
        "packets_at_server": dep.servers[0].recv_tap.total_packets,
        "edge_pktin": dep.edge.ofa.packet_ins_sent,
        "edge_drops": dep.edge.ofa.packet_ins_dropped,
        "mods_sent": app.schedulers["edge"].mods_sent,
        "final_time_events": dep.sim.now,
    }


def test_same_seed_byte_identical_traces(tmp_path):
    paths = []
    for index in range(2):
        obs = Observability(trace=True, metrics=False)
        run(7, obs=obs)
        path = tmp_path / f"trace{index}.jsonl"
        obs.tracer.export_jsonl(str(path))
        paths.append(path)
    first, second = (p.read_bytes() for p in paths)
    assert len(first) > 0
    assert first == second


def test_tracing_does_not_change_results():
    plain = run(11)
    traced = run(11, obs=Observability(trace=True, metrics=True))
    assert plain == traced


def test_profiler_does_not_change_results():
    plain = run(13)
    profiled = run(13, obs=Observability(trace=False, metrics=False, profile=True))
    assert plain == profiled
