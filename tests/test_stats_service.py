"""StatsPoller edge cases: dynamic target sets, stop/start with
in-flight replies, table_id filtering, and departed-target visibility."""

import pytest

from repro.controller.base_app import BaseApp
from repro.controller.controller import OpenFlowController
from repro.controller.stats_service import StatsPoller
from repro.core.config import VSWITCH_FLOW_TABLE
from repro.net.topology import Network
from repro.obs import Observability, observed
from repro.openflow.messages import FlowMod
from repro.sim.engine import Simulator
from repro.switch.match import Match
from repro.switch.profiles import IDEAL_SWITCH, OPEN_VSWITCH
from repro.switch.switch import PhysicalSwitch, VSwitch


class StatsRecorder(BaseApp):
    def __init__(self):
        super().__init__()
        self.replies = []

    def stats_reply(self, dpid, message):
        self.replies.append((dpid, message))


def build(n=2, cls=PhysicalSwitch, profile=IDEAL_SWITCH):
    sim = Simulator()
    net = Network(sim)
    controller = OpenFlowController(sim, net)
    switches = []
    for i in range(n):
        sw = net.add(cls(sim, f"s{i}", profile))
        controller.register_switch(sw)
        switches.append(sw)
    app = StatsRecorder()
    controller.add_app(app)
    return sim, controller, switches, app


def test_interval_must_be_positive():
    sim, controller, _, _ = build(n=1)
    with pytest.raises(ValueError):
        StatsPoller(controller, targets=lambda: [], interval=0.0)


def test_dynamic_target_set_is_reread_each_tick():
    sim, controller, switches, app = build(n=2)
    targets = ["s0"]
    poller = StatsPoller(controller, targets=lambda: list(targets), interval=1.0)
    poller.start()
    sim.run(until=1.5)
    assert {dpid for dpid, _ in app.replies} == {"s0"}
    targets.append("s1")
    sim.run(until=2.5)
    assert {dpid for dpid, _ in app.replies} == {"s0", "s1"}
    targets.clear()
    sent_before = poller.polls_sent
    sim.run(until=4.5)
    assert poller.polls_sent == sent_before


def test_stop_cancels_pending_tick_and_restart_does_not_double():
    sim, controller, switches, app = build(n=1)
    poller = StatsPoller(controller, targets=lambda: ["s0"], interval=1.0)
    poller.start()
    poller.start()  # idempotent
    sim.run(until=1.5)
    assert poller.polls_sent == 1
    poller.stop()
    sim.run(until=3.5)
    assert poller.polls_sent == 1
    poller.start()
    sim.run(until=6.0)
    # Restart at t=3.5: ticks at 4.5 and 5.5 only — a doubled tick
    # chain would have produced four.
    assert poller.polls_sent == 3


def test_stop_during_in_flight_reply_still_dispatches_it():
    sim, controller, switches, app = build(n=1)
    poller = StatsPoller(controller, targets=lambda: ["s0"], interval=1.0)
    poller.start()

    # Stop immediately after the first poll leaves, before its reply
    # propagates back: the reply must still reach the apps.
    sim.schedule_at(1.0001, poller.stop)
    sim.run(until=3.0)
    assert poller.polls_sent == 1
    assert len(app.replies) == 1


def _install_two_tables(sim, controller):
    """One rule in table 0 and one in the vSwitch flow table, spaced so
    the OFA's rate-dependent admission cannot drop either."""
    dp = controller.datapaths["s0"]
    dp.send(FlowMod(match=Match(dst_ip="10.0.0.1"), priority=10, table_id=0))
    sim.schedule_at(0.4, dp.send, FlowMod(
        match=Match(dst_ip="10.0.0.2"), priority=10,
        table_id=VSWITCH_FLOW_TABLE))


def test_table_id_filtering_on_vswitch_tables():
    sim, controller, switches, app = build(n=1, cls=VSwitch, profile=OPEN_VSWITCH)
    _install_two_tables(sim, controller)
    poller = StatsPoller(controller, targets=lambda: ["s0"], interval=1.0,
                         table_id=VSWITCH_FLOW_TABLE)
    poller.start()
    sim.run(until=1.5)
    assert len(app.replies) == 1
    entries = app.replies[0][1].entries
    assert {entry.table_id for entry in entries} == {VSWITCH_FLOW_TABLE}
    assert len(entries) == 1


def test_no_table_filter_returns_all_tables():
    sim, controller, switches, app = build(n=1, cls=VSwitch, profile=OPEN_VSWITCH)
    _install_two_tables(sim, controller)
    poller = StatsPoller(controller, targets=lambda: ["s0"], interval=1.0)
    poller.start()
    sim.run(until=1.5)
    assert {e.table_id for e in app.replies[0][1].entries} == {0, VSWITCH_FLOW_TABLE}


def test_departed_target_skipped_with_counter_and_trace():
    with observed(Observability(trace=True, metrics=True)):
        sim, controller, switches, app = build(n=1)
        poller = StatsPoller(
            controller, targets=lambda: ["s0", "ghost"], interval=1.0
        )
        poller.start()
        sim.run(until=2.5)
    # The live target was polled both ticks; the ghost was skipped,
    # counted, and traced — never raising or polling.
    assert poller.polls_sent == 2
    assert poller.targets_departed == 2
    counter = sim.obs.metrics.counters["stats.targets_departed"]
    assert counter.value == 2
    departed = [
        r for r in sim.obs.tracer.records()
        if r.get("name") == "stats.target_departed"
    ]
    assert len(departed) == 2
    assert all(r["args"]["dpid"] == "ghost" for r in departed)
    assert {dpid for dpid, _ in app.replies} == {"s0"}
