"""Tests for duplicate-Packet-In reinjection and held-packet buffering."""

import pytest

from repro.net.flow import FlowKey
from repro.net.packet import Packet
from repro.openflow.messages import PacketIn
from repro.testbed.deployment import build_deployment


def make_packet(dep, sport=4242, flag="SYN"):
    return Packet("10.77.0.1", dep.servers[0].ip, src_port=sport, dst_port=80,
                  tcp_flag=flag)


def inject(dep, packet, port=2):
    dep.scotch.packet_in("edge", PacketIn(datapath_id="edge", packet=packet,
                                          in_port=port))


def test_pre_decision_packets_are_held_then_flushed():
    dep = build_deployment(seed=71)
    app = dep.scotch
    first = make_packet(dep)
    inject(dep, first)
    key = first.flow_key
    info = app.flow_db.get(key)
    # More packets arrive before the routing decision: held, not lost.
    for _ in range(3):
        inject(dep, make_packet(dep, flag="DATA"))
    assert len(info.held_packets) == 3
    assert app.duplicate_packet_ins == 3
    dep.sim.run(until=2.0)
    # Decision made; held packets flushed along the chosen path.
    assert info.held_packets == []
    assert info.reinject is not None
    record = dep.servers[0].recv_tap.flow(key)
    assert record.packets_received == 4  # first + 3 held


def test_held_packet_cap_bounds_memory():
    dep = build_deployment(seed=71)
    app = dep.scotch
    inject(dep, make_packet(dep))
    info = app.flow_db.get(make_packet(dep).flow_key)
    for _ in range(100):
        inject(dep, make_packet(dep, flag="DATA"))
    assert len(info.held_packets) == app._HELD_PACKETS_CAP


def test_post_decision_duplicates_reinjected_immediately():
    dep = build_deployment(seed=71)
    app = dep.scotch
    inject(dep, make_packet(dep))
    dep.sim.run(until=2.0)  # decision done
    key = make_packet(dep).flow_key
    before = dep.servers[0].recv_tap.flow(key).packets_received
    inject(dep, make_packet(dep, flag="DATA"))
    dep.sim.run(until=3.0)
    after = dep.servers[0].recv_tap.flow(key).packets_received
    assert after == before + 1


def test_migrated_flow_clears_reinjection_target():
    """After migration the overlay reinjection target is dropped (its
    rules are gone); red rules carry the flow."""
    from repro.net.flow import FlowSpec
    from repro.traffic import SpoofedFlood
    from repro.core.config import ScotchConfig

    dep = build_deployment(seed=3, config=ScotchConfig(overlay_threshold=2))
    flood = SpoofedFlood(dep.sim, dep.attacker, dep.servers[0].ip, rate_fps=1500.0)
    flood.start(at=0.5, stop_at=15.0)
    key = FlowKey("10.99.0.99", dep.servers[0].ip, 6, 5555, 80)
    dep.attacker.start_flow(FlowSpec(key=key, start_time=3.0, size_packets=3000,
                                     packet_size=1500, rate_pps=500.0, batch=10))
    dep.sim.run(until=12.0)
    info = dep.scotch.flow_db.get(key)
    assert info.route == "physical"
    assert info.reinject is None
