"""Whole-system determinism: same seed => bit-identical outcomes.

The simulator's reproducibility contract is what makes the benchmark
figures stable and regressions detectable; this exercises it at
deployment scale across every stochastic component (traffic, OFA
insertion loss, scheduler jitter, group hashing).
"""

import pytest

pytestmark = pytest.mark.slow

from repro.metrics import client_flow_failure_fraction
from repro.testbed.deployment import build_deployment
from repro.traffic import NewFlowSource, SpoofedFlood


def run(seed):
    dep = build_deployment(seed=seed, racks=2, mesh_per_rack=1)
    sim = dep.sim
    server_ip = dep.servers[0].ip
    client = NewFlowSource(sim, dep.client, server_ip, rate_fps=100.0)
    attack = SpoofedFlood(sim, dep.attacker, server_ip, rate_fps=1500.0)
    client.start(at=0.5, stop_at=8.0)
    attack.start(at=1.0, stop_at=8.0)
    sim.run(until=10.0)
    app = dep.scotch
    return {
        "counts": app.flow_db.counts(),
        "client_failure": client_flow_failure_fraction(
            dep.client.sent_tap, dep.servers[0].recv_tap
        ),
        "packets_at_server": dep.servers[0].recv_tap.total_packets,
        "edge_pktin": dep.edge.ofa.packet_ins_sent,
        "edge_drops": dep.edge.ofa.packet_ins_dropped,
        "mods_sent": app.schedulers["edge"].mods_sent,
        "final_time_events": dep.sim.now,
    }


def test_same_seed_identical_runs():
    assert run(42) == run(42)


def test_different_seeds_differ():
    a, b = run(1), run(2)
    # Aggregate rates are similar but exact event counts differ.
    assert a != b
