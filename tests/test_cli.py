"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


def test_list_command(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "fig 3" in out and "ablation" in out


def test_profiles_command(capsys):
    assert main(["profiles"]) == 0
    out = capsys.readouterr().out
    assert "Pica8 Pronto 3780" in out
    assert "Open vSwitch" in out


def test_fig9_quick(capsys):
    assert main(["fig", "9", "--quick"]) == 0
    out = capsys.readouterr().out
    assert "Fig. 9" in out
    assert "attempted/s" in out


def test_fig4_quick(capsys):
    assert main(["fig", "4", "--quick"]) == 0
    out = capsys.readouterr().out
    assert "Packet-In/s" in out


def test_unknown_figure_errors(capsys):
    assert main(["fig", "99"]) == 2
    err = capsys.readouterr().err
    assert "unknown figure" in err


def test_demo_command(capsys):
    assert main(["demo", "--attack-rate", "1500"]) == 0
    out = capsys.readouterr().out
    assert "vanilla" in out and "scotch" in out


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_every_figure_number_is_wired():
    """Each advertised figure number must be handled by figure_text (no
    drift between the list and the dispatcher)."""
    import inspect

    from repro import cli

    source = inspect.getsource(cli.figure_text)
    for number in cli.FIGURES:
        assert f'"{number}"' in source


def test_chrome_trace_path_derivation():
    from repro.cli import chrome_trace_path

    assert chrome_trace_path("run.trace.jsonl") == "run.trace.chrome.json"
    assert chrome_trace_path("run.out") == "run.out.chrome.json"


def test_fig4_quick_with_observability(tmp_path, capsys):
    import json

    trace = tmp_path / "fig4.trace.jsonl"
    metrics = tmp_path / "fig4.metrics.jsonl"
    manifest = tmp_path / "fig4.manifest.json"
    assert main(["fig", "4", "--quick", "--trace", str(trace),
                 "--metrics", str(metrics), "--profile",
                 "--manifest", str(manifest)]) == 0
    out = capsys.readouterr().out
    assert "Fig. 4" in out
    assert "Engine profile" in out
    # All three artifacts exist and parse.
    chrome = tmp_path / "fig4.trace.chrome.json"
    assert trace.exists() and metrics.exists() and chrome.exists()
    events = json.loads(chrome.read_text())["traceEvents"]
    assert any(e["ph"] == "X" and e["name"] == "packet_in" for e in events)
    loaded = json.loads(manifest.read_text())
    assert loaded["outputs"]["trace_jsonl"] == str(trace)
    assert loaded["command"][:3] == ["scotch-repro", "fig", "4"]
    # The trace survives its own inspector.
    assert main(["inspect", str(trace)]) == 0
    out = capsys.readouterr().out
    assert "packet_in" in out and "p99 (ms)" in out
    # After the observed run, the process default is back to the no-op.
    from repro.obs import NULL_OBS, get_default_obs

    assert get_default_obs() is NULL_OBS


def test_inspect_missing_file_errors(tmp_path, capsys):
    assert main(["inspect", str(tmp_path / "nope.jsonl")]) == 2
    assert "cannot read trace" in capsys.readouterr().err


def test_inspect_metrics_file(tmp_path, capsys):
    from repro.obs.metrics import MetricsRegistry

    registry = MetricsRegistry()
    registry.counter("ofa.sw1.packet_ins").inc(7)
    registry.gauge("queue.depth").set(2.5)
    registry.histogram("lat", buckets=(1.0, 10.0)).observe(3.0)
    registry.sample(now=1.0)
    path = tmp_path / "m.metrics.jsonl"
    registry.export_jsonl(str(path))
    assert main(["inspect", str(path)]) == 0
    out = capsys.readouterr().out
    assert "Metrics summary" in out
    assert "ofa.sw1.packet_ins" in out and "counter" in out
    assert "Histograms" in out and "p99" in out
    assert "samples: 2" in out


def test_prom_flag_writes_text_format(tmp_path, capsys):
    prom = tmp_path / "fig9.prom"
    assert main(["fig", "9", "--quick", "--prom", str(prom)]) == 0
    out = capsys.readouterr().out
    assert "prometheus:" in out
    text = prom.read_text()
    assert "# TYPE scotch_" in text and "_total " in text


@pytest.mark.slow
def test_all_figures_run_quick(capsys):
    """Every figure subcommand completes in --quick mode."""
    for number in ("3", "10", "11", "12", "13", "14", "15"):
        assert main(["fig", number, "--quick"]) == 0, f"fig {number}"
        out = capsys.readouterr().out
        assert f"Fig. {number}" in out


@pytest.mark.slow
def test_ablation_and_tcam_commands(capsys):
    assert main(["ablation", "--quick"]) == 0
    out = capsys.readouterr().out
    assert "scotch" in out and "proactive" in out
    assert main(["tcam", "--quick"]) == 0
    out = capsys.readouterr().out
    assert "TABLE_FULL" in out


@pytest.mark.slow
def test_report_command_writes_markdown(tmp_path):
    out = tmp_path / "REPORT.md"
    assert main(["report", "--quick", "-o", str(out)]) == 0
    text = out.read_text()
    assert text.startswith("# Scotch reproduction report")
    for number in ("3", "9", "10", "13", "15"):
        assert f"## Figure {number}" in text
    assert "## Ablation — baselines" in text
    assert "## Ablation — TCAM bottleneck" in text


def test_chaos_rejects_short_durations(capsys):
    assert main(["chaos", "--duration", "10"]) == 2
    err = capsys.readouterr().err
    assert "duration" in err


def test_chaos_listed(capsys):
    assert main(["list"]) == 0
    assert "chaos" in capsys.readouterr().out


def test_health_rejects_short_durations(capsys):
    assert main(["health", "--duration", "5"]) == 2
    assert "duration" in capsys.readouterr().err


def test_chaos_no_health_rejects_health_outputs(tmp_path, capsys):
    assert main(["chaos", "--no-health",
                 "--alert-log", str(tmp_path / "a.jsonl")]) == 2
    assert "--no-health" in capsys.readouterr().err


def test_health_rejects_unreadable_rules_file(tmp_path, capsys):
    assert main(["health", "--rules", str(tmp_path / "nope.rules")]) == 2
    assert "cannot load alert rules" in capsys.readouterr().err


def test_health_listed(capsys):
    assert main(["list"]) == 0
    assert "health" in capsys.readouterr().out


@pytest.mark.slow
@pytest.mark.chaos
def test_chaos_command_full_run(capsys, tmp_path):
    log_path = tmp_path / "faults.jsonl"
    assert main(["chaos", "--seed", "1", "--fault-log", str(log_path)]) == 0
    out = capsys.readouterr().out
    assert "Chaos run" in out and "Recovery report" in out
    # With health on by default the report carries the scorecard.
    assert "Detection scorecard" in out
    assert "verdict: HEALTHY" in out
    lines = log_path.read_text().strip().splitlines()
    assert len(lines) > 5


@pytest.mark.slow
@pytest.mark.chaos
def test_health_command_full_run(capsys, tmp_path):
    import json

    alert_log = tmp_path / "alerts.jsonl"
    html = tmp_path / "health.html"
    card = tmp_path / "scorecard.json"
    assert main(["health", "--seed", "1",
                 "--alert-log", str(alert_log),
                 "--health-report", str(html),
                 "--scorecard-json", str(card)]) == 0
    out = capsys.readouterr().out
    assert "Health report" in out and "Detection scorecard" in out
    assert "-> OK" in out
    lines = alert_log.read_text().strip().splitlines()
    assert len(lines) > 5
    assert json.loads(lines[0])["schema"] == "alert_timeline"
    assert all(json.loads(line)["alert"] for line in lines[1:])
    assert html.read_text().startswith("<!DOCTYPE html")
    payload = json.loads(card.read_text())
    assert payload["recall"] == 1.0 and payload["precision"] == 1.0


# ----------------------------------------------------------------------
# Postmortem bundles + causality inspection
# ----------------------------------------------------------------------
def _chaos_bundle_dir(tmp_path):
    """A real (small) chaos run's exported postmortem bundles."""
    from repro.faults import FaultPlan, run_chaos
    from repro.obs.postmortem import export_bundles

    plan = FaultPlan()
    plan.channel_loss(1.5, "edge", duration=1.0, loss=0.08, duplicate=0.02,
                      jitter=0.004)
    plan.ofa_stall(3.0, "edge", duration=0.8)
    report = run_chaos(seed=3, duration=6.0, client_rate=50.0,
                       attack_rate=600.0, plan=plan, health=True,
                       postmortem=True)
    assert report.postmortems
    return export_bundles(report.postmortems, str(tmp_path / "pm"))


def test_postmortem_command_renders_jsonl_and_html(tmp_path, capsys):
    import json

    paths = _chaos_bundle_dir(tmp_path)
    jsonl = tmp_path / "critpath.jsonl"
    html = tmp_path / "postmortem.html"
    assert main(["postmortem", paths[0],
                 "--jsonl", str(jsonl), "--html", str(html)]) == 0
    out = capsys.readouterr().out
    assert "Postmortem bundle" in out
    assert "Causal ancestry" in out
    assert "ancestry:" in out and "flight:" in out
    lines = [json.loads(line)
             for line in jsonl.read_text().strip().splitlines()]
    assert lines[0]["type"] == "critpath_summary"
    page = html.read_text()
    assert page.startswith("<!DOCTYPE html>")
    assert "Trigger" in page and "Per-stage latency attribution" in page


def test_inspect_sniffs_postmortem_bundle(tmp_path, capsys):
    paths = _chaos_bundle_dir(tmp_path)
    assert main(["inspect", paths[0]]) == 0
    out = capsys.readouterr().out
    assert "Postmortem bundle" in out


def test_postmortem_command_rejects_non_bundles(tmp_path, capsys):
    from repro.obs.metrics import MetricsRegistry

    path = tmp_path / "m.metrics.jsonl"
    MetricsRegistry().export_jsonl(str(path))
    assert main(["postmortem", str(path)]) == 2
    assert "metrics" in capsys.readouterr().err
    assert main(["postmortem", str(tmp_path / "nope.jsonl")]) == 2


def test_postmortem_command_on_causality_trace(tmp_path, capsys):
    from repro.obs import Observability, observed
    from repro.testbed.single_switch import SERVER_IP, build_single_switch
    from repro.traffic import NewFlowSource

    obs = Observability(trace=True, metrics=False, causality=True)
    with observed(obs):
        bed = build_single_switch(seed=5)
        NewFlowSource(bed.sim, bed.client, SERVER_IP, rate_fps=40.0).start(
            at=0.2, stop_at=1.2)
        bed.sim.run(until=2.0)
    trace = tmp_path / "run.trace.jsonl"
    obs.tracer.export_jsonl(str(trace))
    html = tmp_path / "critpath.html"
    assert main(["postmortem", str(trace), "--html", str(html)]) == 0
    out = capsys.readouterr().out
    assert "Packet-In journeys" in out
    assert "Longest chain" in html.read_text()
    # `inspect` on the same trace adds the attribution table + tree.
    assert main(["inspect", str(trace)]) == 0
    out = capsys.readouterr().out
    assert "Packet-In latency attribution" in out
    assert "(unattributed)" in out
    assert "reconciliation max gap" in out


def test_inspect_fault_log_and_alert_timeline(tmp_path, capsys):
    import json

    fault_log = tmp_path / "faults.jsonl"
    with open(fault_log, "w") as handle:
        handle.write(json.dumps({"type": "schema", "schema": "fault_log",
                                 "version": 1}) + "\n")
        handle.write(json.dumps({"t": 1.0, "kind": "ofa_stall",
                                 "target": "edge", "phase": "inject"}) + "\n")
        handle.write(json.dumps({"t": 2.0, "kind": "ofa_stall",
                                 "target": "edge", "phase": "clear"}) + "\n")
    assert main(["inspect", str(fault_log)]) == 0
    out = capsys.readouterr().out
    assert "Fault log" in out and "ofa_stall" in out and "actions: 2" in out

    timeline = tmp_path / "alerts.jsonl"
    with open(timeline, "w") as handle:
        handle.write(json.dumps({"type": "schema", "schema": "alert_timeline",
                                 "version": 1}) + "\n")
        handle.write(json.dumps({"t": 1.0, "alert": "hot",
                                 "state": "firing"}) + "\n")
    assert main(["inspect", str(timeline)]) == 0
    out = capsys.readouterr().out
    assert "Alert timeline" in out and "hot" in out and "transitions: 1" in out
