"""Tests for the baseline schemes (§4 alternatives)."""

from repro.core.baselines import DedicatedPortApp, DropPolicingApp, ProactiveApp
from repro.core.config import ScotchConfig
from repro.metrics import client_flow_failure_fraction
from repro.switch.profiles import OPEN_VSWITCH
from repro.switch.switch import VSwitch
from repro.testbed.deployment import build_deployment
from repro.traffic import NewFlowSource, SpoofedFlood


def managed(dep):
    return ["edge", "spine"] + [t.name for t in dep.tors]


def run_flood(dep, attack_rate=1500.0, client_rate=50.0, until=12.0):
    sim = dep.sim
    server_ip = dep.servers[0].ip
    client = NewFlowSource(sim, dep.client, server_ip, rate_fps=client_rate)
    attack = SpoofedFlood(sim, dep.attacker, server_ip, rate_fps=attack_rate)
    client.start(at=0.5, stop_at=until - 1.0)
    attack.start(at=1.0, stop_at=until - 1.0)
    sim.run(until=until)
    return client_flow_failure_fraction(
        dep.client.sent_tap, dep.servers[0].recv_tap, start=2.0, end=until - 1.5
    )


def test_drop_policing_protects_clean_port():
    """Per-port fair queueing alone protects the clean client port — the
    attack is on a different port, so the client's R share suffices."""
    dep = build_deployment(seed=5, add_scotch_app=False)
    app = DropPolicingApp(managed(dep))
    dep.controller.add_app(app)
    failure = run_flood(dep)
    # The client's flows still mostly fail at the *switch OFA* (Packet-In
    # loss) because there is no overlay default rule; policing only helps
    # once messages reach the controller.
    assert 0.0 <= failure <= 1.0
    assert app.policed_drops >= 0


def test_drop_policing_sheds_excess():
    # Packet-Ins arrive at the OFA's 200/s; with R pinned below that the
    # controller-side queue builds and the policer engages.
    dep = build_deployment(seed=5, add_scotch_app=False)
    config = ScotchConfig(overlay_threshold=5, drop_threshold=50, install_rate=50.0)
    app = DropPolicingApp(managed(dep), config)
    dep.controller.add_app(app)
    run_flood(dep, attack_rate=1500.0)
    assert app.policed_drops > 0
    dropped = app.flow_db.counts().get("dropped", 0)
    assert dropped > 0


def add_collector(dep):
    collector = dep.network.add(
        VSwitch(dep.sim, "collector", OPEN_VSWITCH.variant(packet_in_rate=20000.0))
    )
    dep.network.link("collector", "edge", 1e9)
    dep.controller.register_switch(collector)
    return collector


def test_dedicated_port_deflects_packet_ins():
    dep = build_deployment(seed=5, add_scotch_app=False)
    collector = add_collector(dep)
    app = DedicatedPortApp(managed(dep), collectors={"edge": "collector"})
    dep.controller.add_app(app)
    run_flood(dep, attack_rate=1500.0)
    assert "edge" in app.deflections_active
    # Deflected Packet-Ins arrive via the collector's agent.
    assert collector.ofa.packet_ins_sent > 1000


def test_dedicated_port_still_limited_by_install_rate():
    """The paper's critique: deflection saves the Packet-Ins but flows are
    still admitted at only R rules/sec, so most flood flows never pass."""
    dep = build_deployment(seed=5, add_scotch_app=False)
    add_collector(dep)
    app = DedicatedPortApp(managed(dep), collectors={"edge": "collector"})
    dep.controller.add_app(app)
    run_flood(dep, attack_rate=1500.0, until=14.0)
    admitted = app.flow_db.counts().get("physical", 0)
    offered = 1500 * 11.5
    # Throughput pinned near R (= 200/s) regardless of offered load.
    assert admitted < 0.25 * offered


def test_dedicated_port_loses_ingress_attribution():
    dep = build_deployment(seed=5, add_scotch_app=False)
    add_collector(dep)
    app = DedicatedPortApp(managed(dep), collectors={"edge": "collector"})
    dep.controller.add_app(app)
    run_flood(dep, attack_rate=1500.0)
    deflected = [i for i in app.flow_db._flows.values() if i.ingress_port == 0]
    assert deflected  # everything lands in the port-0 queue


def test_proactive_survives_but_is_blind():
    """§1's pre-installation alternative: flood-proof, zero visibility."""
    dep = build_deployment(seed=5, add_scotch_app=False)
    app = ProactiveApp(managed(dep))
    dep.controller.add_app(app)
    failure = run_flood(dep, attack_rate=2000.0)
    assert failure == 0.0
    assert app.rules_preinstalled > 0
    assert app.flows_observed == 0
    assert dep.controller.packet_ins_received == 0
    # No per-flow state anywhere: the switches run purely on the coarse
    # destination rules.
    assert dep.edge.ofa.packet_ins_sent == 0


def test_dedicated_port_withdraws_when_attack_stops():
    dep = build_deployment(seed=5, add_scotch_app=False)
    add_collector(dep)
    app = DedicatedPortApp(managed(dep), collectors={"edge": "collector"})
    dep.controller.add_app(app)
    sim = dep.sim
    attack = SpoofedFlood(sim, dep.attacker, dep.servers[0].ip, rate_fps=1500.0)
    attack.start(at=0.5, stop_at=6.0)
    sim.run(until=20.0)
    assert "edge" not in app.deflections_active
