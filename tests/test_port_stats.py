"""Tests for per-port statistics (PortStatsRequest/Reply)."""

import pytest

from repro.controller.base_app import BaseApp
from repro.controller.controller import OpenFlowController
from repro.net.flow import FlowKey, FlowSpec
from repro.net.host import Host
from repro.net.topology import Network
from repro.sim.engine import Simulator
from repro.switch.actions import Output
from repro.switch.match import Match
from repro.switch.profiles import IDEAL_SWITCH
from repro.switch.switch import PhysicalSwitch


class Collector(BaseApp):
    def __init__(self):
        super().__init__()
        self.replies = []

    def port_stats_reply(self, dpid, message):
        self.replies.append((dpid, message))


def build():
    sim = Simulator()
    net = Network(sim)
    sw = net.add(PhysicalSwitch(sim, "s0", IDEAL_SWITCH))
    a = net.add(Host(sim, "a", "10.0.0.1"))
    b = net.add(Host(sim, "b", "10.0.0.2"))
    net.link("a", "s0")
    net.link("b", "s0")
    controller = OpenFlowController(sim, net)
    controller.register_switch(sw)
    app = controller.add_app(Collector())
    return sim, net, sw, controller, app, a, b


def test_port_stats_reflect_forwarded_traffic():
    sim, net, sw, controller, app, a, b = build()
    out_port = net.port_between("s0", "b")
    key = FlowKey("10.0.0.1", "10.0.0.2", 6, 1, 80)
    sw.install_static(Match.for_flow(key), 100, [Output(out_port)])
    a.start_flow(FlowSpec(key=key, start_time=0.1, size_packets=7,
                          packet_size=500, rate_pps=100.0))
    sim.run(until=1.0)
    controller.request_port_stats("s0")
    sim.run(until=1.5)
    assert len(app.replies) == 1
    dpid, reply = app.replies[0]
    assert dpid == "s0"
    by_port = {e.port_no: e for e in reply.entries}
    assert by_port[out_port].tx_packets == 7
    assert by_port[out_port].tx_bytes == 7 * 500


def test_port_filter():
    sim, net, sw, controller, app, a, b = build()
    target = net.port_between("s0", "a")
    controller.request_port_stats("s0", port_no=target)
    sim.run(until=1.0)
    entries = app.replies[0][1].entries
    assert len(entries) == 1
    assert entries[0].port_no == target


def test_reply_correlates_with_request():
    sim, net, sw, controller, app, a, b = build()
    request = controller.request_port_stats("s0")
    sim.run(until=1.0)
    assert app.replies[0][1].request_xid == request.xid


def test_dead_switch_does_not_reply():
    sim, net, sw, controller, app, a, b = build()
    sw.fail()
    controller.request_port_stats("s0")
    sim.run(until=1.0)
    assert app.replies == []
