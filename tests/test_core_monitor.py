"""Tests for congestion detection and withdrawal conditions."""

from repro.core.config import ScotchConfig
from repro.core.monitor import CongestionMonitor
from repro.sim.engine import Simulator
from repro.sim.process import Process
from repro.switch.profiles import PICA8_PRONTO_3780


def build(config=None):
    sim = Simulator()
    config = config or ScotchConfig(monitor_interval=0.1, withdraw_hold=1.0)
    congested, cleared = [], []
    monitor = CongestionMonitor(
        sim, config,
        on_congested=lambda d: congested.append((sim.now, d)),
        on_cleared=lambda d: cleared.append((sim.now, d)),
    )
    monitor.watch("sw", PICA8_PRONTO_3780)
    monitor.start()
    return sim, monitor, congested, cleared


def drive(sim, monitor, rate, start, stop):
    def source():
        while sim.now < stop:
            monitor.observe_new_flow("sw")
            yield 1.0 / rate

    Process(sim, source(), start_delay=start)


def test_no_event_below_threshold():
    sim, monitor, congested, cleared = build()
    drive(sim, monitor, rate=100.0, start=0.0, stop=5.0)  # < 0.8*200
    sim.run(until=6.0)
    assert congested == []


def test_congestion_detected_above_threshold():
    sim, monitor, congested, _ = build()
    drive(sim, monitor, rate=190.0, start=0.0, stop=5.0)
    sim.run(until=6.0)
    assert len(congested) == 1
    assert congested[0][0] < 1.0  # detected quickly
    assert monitor.is_congested("sw")


def test_congestion_fires_once_until_cleared():
    sim, monitor, congested, _ = build()
    drive(sim, monitor, rate=300.0, start=0.0, stop=5.0)
    sim.run(until=6.0)
    assert len(congested) == 1


def test_withdrawal_requires_hold_time():
    sim, monitor, congested, cleared = build()
    drive(sim, monitor, rate=300.0, start=0.0, stop=2.0)
    drive(sim, monitor, rate=50.0, start=2.0, stop=10.0)  # < 0.6*200
    sim.run(until=10.0)
    assert len(cleared) == 1
    clear_time = cleared[0][0]
    assert clear_time >= 2.0 + 1.0  # hold period respected


def test_no_withdrawal_while_rate_in_between():
    sim, monitor, congested, cleared = build()
    drive(sim, monitor, rate=300.0, start=0.0, stop=2.0)
    drive(sim, monitor, rate=150.0, start=2.0, stop=10.0)  # between 120 and 160
    sim.run(until=10.0)
    assert cleared == []


def test_dip_resets_hold_timer():
    config = ScotchConfig(monitor_interval=0.1, withdraw_hold=2.0)
    sim, monitor, congested, cleared = build(config)
    drive(sim, monitor, rate=300.0, start=0.0, stop=2.0)
    drive(sim, monitor, rate=50.0, start=2.0, stop=3.0)   # dips below...
    drive(sim, monitor, rate=300.0, start=3.0, stop=4.0)  # ...but spikes again
    drive(sim, monitor, rate=50.0, start=4.0, stop=10.0)
    sim.run(until=10.0)
    assert len(congested) == 1  # congested never cleared in between
    assert cleared and cleared[0][0] >= 6.0


def test_re_congestion_after_clear():
    sim, monitor, congested, cleared = build()
    drive(sim, monitor, rate=300.0, start=0.0, stop=2.0)
    drive(sim, monitor, rate=10.0, start=2.0, stop=5.0)
    drive(sim, monitor, rate=300.0, start=5.0, stop=7.0)
    sim.run(until=8.0)
    assert len(congested) == 2
    assert len(cleared) == 1


def test_rate_query():
    sim, monitor, _, _ = build()
    drive(sim, monitor, rate=100.0, start=0.0, stop=2.0)
    sim.run(until=1.0)
    assert 80 <= monitor.rate("sw") <= 120
    assert monitor.rate("unknown") == 0.0


def test_stop_halts_evaluation():
    sim, monitor, congested, _ = build()
    monitor.stop()
    drive(sim, monitor, rate=300.0, start=0.0, stop=3.0)
    sim.run(until=4.0)
    assert congested == []
