"""Unit-ish tests for the ScotchApp's Packet-In handling and routing
decisions (deployment-scale behaviours live in test_core_integration)."""

import zlib

import pytest

from repro.core.config import ScotchConfig
from repro.net.flow import FlowKey
from repro.net.packet import Packet
from repro.openflow.messages import PacketIn
from repro.testbed.deployment import build_deployment
from repro.traffic import SpoofedFlood


def make_packet(sport=1000, dst="10.0.0.10"):
    return Packet("10.50.0.1", dst, src_port=sport, dst_port=80)


def test_direct_packet_in_recorded_with_port():
    dep = build_deployment(seed=31)
    app = dep.scotch
    message = PacketIn(datapath_id="edge", packet=make_packet(dst=dep.servers[0].ip),
                       in_port=7)
    app.packet_in("edge", message)
    info = app.flow_db.get(message.packet.flow_key)
    assert info.first_hop_switch == "edge"
    assert info.ingress_port == 7
    assert info.entry_vswitch is None


def test_overlay_packet_in_attributed_via_labels():
    dep = build_deployment(seed=31)
    app = dep.scotch
    overlay = app.overlay
    tunnel = overlay.switch_tunnels[("edge", overlay.assignment["edge"][0])]
    label = overlay.port_label("edge", 2)
    packet = make_packet(dst=dep.servers[0].ip)
    message = PacketIn(
        datapath_id=overlay.assignment["edge"][0],
        packet=packet,
        in_port=1,
        metadata={"tunnel_id": tunnel.tunnel_id, "inner_label": label},
    )
    app.packet_in(overlay.assignment["edge"][0], message)
    info = app.flow_db.get(packet.flow_key)
    assert info.first_hop_switch == "edge"
    assert info.ingress_port == 2
    assert info.entry_vswitch == overlay.assignment["edge"][0]


def test_duplicate_packet_ins_counted_not_requeued():
    dep = build_deployment(seed=31)
    app = dep.scotch
    packet = make_packet(dst=dep.servers[0].ip)
    for _ in range(3):
        app.packet_in("edge", PacketIn(datapath_id="edge", packet=packet, in_port=1))
    assert app.duplicate_packet_ins == 2
    assert len(app.flow_db) == 1


def test_host_vswitch_packet_in_handled_lazily():
    """A Packet-In from an unmanaged (host) vSwitch — e.g. a reverse/ACK
    flow originating behind it — gets the vSwitch a lazily-created
    scheduler and normal flow handling."""
    dep = build_deployment(seed=31)
    app = dep.scotch
    hv = dep.host_vswitches[0]
    packet = make_packet(dst=dep.servers[0].ip)
    app.packet_in(hv.name, PacketIn(datapath_id=hv.name, packet=packet, in_port=1))
    assert app.unattributed_packet_ins == 1  # counted, then handled
    assert hv.name in app.schedulers
    assert len(app.flow_db) == 1
    assert app.flow_db.get(packet.flow_key).first_hop_switch == hv.name


def test_truly_unknown_dpid_ignored():
    dep = build_deployment(seed=31)
    app = dep.scotch
    app.packet_in("ghost", PacketIn(datapath_id="ghost", packet=make_packet(), in_port=1))
    assert app.unattributed_packet_ins == 1
    assert len(app.flow_db) == 0


def test_unroutable_destination_dropped():
    dep = build_deployment(seed=31)
    app = dep.scotch
    packet = make_packet(dst="99.99.99.99")
    app.packet_in("edge", PacketIn(datapath_id="edge", packet=packet, in_port=1))
    dep.sim.run(until=1.0)
    assert app.unroutable >= 1
    assert app.flow_db.get(packet.flow_key).route == "dropped"


def test_hash_entry_selection_matches_group_hash():
    """The controller's predicted entry vSwitch must equal the one the
    data-plane select group actually sends the flow to, for any flow."""
    dep = build_deployment(seed=31)
    app = dep.scotch
    overlay = app.overlay
    switch = dep.edge
    from repro.switch.group_table import Bucket, GroupEntry

    group = GroupEntry(1, "select", overlay.group_buckets("edge"),
                       hash_seed=switch.hash_seed)
    for sport in range(50):
        key = FlowKey("10.50.0.1", dep.servers[0].ip, 6, 2000 + sport, 80)
        predicted = app._hash_entry_vswitch("edge", key)
        packet = Packet(key.src_ip, key.dst_ip, proto=key.proto,
                        src_port=key.src_port, dst_port=key.dst_port)
        actual = group.select_bucket(packet).label
        assert predicted == actual


def test_activation_is_resent_and_idempotent():
    dep = build_deployment(seed=32)
    app = dep.scotch
    flood = SpoofedFlood(dep.sim, dep.attacker, dep.servers[0].ip, rate_fps=2000.0)
    flood.start(at=0.5, stop_at=8.0)
    dep.sim.run(until=8.0)
    assert app.activations == 1
    # Despite the resends, exactly one default rule per port and one group.
    from repro.core.config import PRIORITY_SCOTCH_DEFAULT

    defaults = [e for e in dep.edge.datapath.table(0).entries()
                if e.priority == PRIORITY_SCOTCH_DEFAULT]
    assert len(defaults) == len(dep.edge.ports)
    assert len(dep.edge.datapath.groups) == 1


def test_scotch_config_validation():
    with pytest.raises(ValueError):
        ScotchConfig(withdraw_fraction=0.9, activate_fraction=0.8)
    with pytest.raises(ValueError):
        ScotchConfig(overlay_threshold=100, drop_threshold=50)
    with pytest.raises(ValueError):
        ScotchConfig(vswitches_per_switch=0)
