"""Tests for the engine event hook and profiler."""

from repro.obs.profiler import EngineProfiler
from repro.sim.engine import Simulator


def test_event_hook_receives_fired_events():
    sim = Simulator()
    seen = []
    sim.set_event_hook(lambda event, wall_s, depth: seen.append(
        (event.time, wall_s >= 0.0, depth)))
    sim.schedule(1.0, lambda: None)
    sim.schedule(2.0, lambda: None)
    sim.run()
    assert [(t, ok) for t, ok, _ in seen] == [(1.0, True), (2.0, True)]
    sim.set_event_hook(None)
    sim.schedule(3.0, lambda: None)
    sim.run()
    assert len(seen) == 2  # cleared hook sees nothing


def test_profiler_accounts_per_callback():
    sim = Simulator()
    profiler = EngineProfiler()
    profiler.attach(sim)

    def work():
        pass

    for delay in (1.0, 2.0, 3.0):
        sim.schedule(delay, work)
    sim.schedule(4.0, lambda: None)
    sim.run()
    profiler.detach(sim)
    assert profiler.events_fired == 4
    by_name = profiler.callbacks
    work_stats = by_name[work.__qualname__]
    assert work_stats.count == 3
    assert work_stats.total_s >= 0.0
    assert work_stats.max_s >= 0.0
    assert profiler.heap_depth_max >= 1


def test_hot_callbacks_and_report_rows():
    profiler = EngineProfiler()

    class FakeEvent:
        def __init__(self, callback):
            self.callback = callback

    def slow():
        pass

    def fast():
        pass

    profiler.on_event_fired(FakeEvent(slow), 0.5, 10)
    profiler.on_event_fired(FakeEvent(fast), 0.1, 4)
    ranked = profiler.hot_callbacks()
    assert [s.name for s in ranked] == [slow.__qualname__, fast.__qualname__]
    rows = profiler.report_rows(top=1)
    assert rows[0][0] == slow.__qualname__
    assert rows[0][1] == 1
    summary = profiler.summary()
    assert summary["events_fired"] == 2
    assert summary["distinct_callbacks"] == 2
    assert summary["heap_depth_max"] == 10
    assert summary["heap_depth_mean"] == 7.0
