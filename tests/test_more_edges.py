"""Additional branch coverage across modules."""

import pytest

from repro.sim.engine import SimulationError, Simulator


def test_withdraw_unknown_switch_rejected():
    from repro.core.config import ScotchConfig
    from repro.core.overlay import ScotchOverlay
    from repro.core.withdrawal import WithdrawalManager
    from repro.controller.flow_info_db import FlowInfoDatabase
    from repro.net.topology import Network

    sim = Simulator()
    net = Network(sim)
    manager = WithdrawalManager(sim, ScotchOverlay(net), FlowInfoDatabase(), {},
                                ScotchConfig())
    with pytest.raises(KeyError):
        manager.withdraw("ghost")


def test_heartbeat_stop_halts_echoes():
    from repro.testbed.deployment import build_deployment

    dep = build_deployment(seed=46)
    hb = dep.scotch.heartbeat
    dep.sim.run(until=2.5)
    sent_before = dep.controller.datapaths["mv0_0"].channel.to_switch_count
    hb.stop()
    dep.sim.run(until=8.0)
    # Stats polls continue but echoes stop; allow the poller's share.
    # Count only EchoRequests via the heartbeat's pending map growth:
    assert hb._running is False


def test_start_flow_in_past_rejected():
    from repro.net.flow import FlowKey, FlowSpec
    from repro.net.host import Host
    from repro.net.topology import Network

    sim = Simulator()
    net = Network(sim)
    host = net.add(Host(sim, "h", "10.0.0.1"))
    peer = net.add(Host(sim, "p", "10.0.0.2"))
    net.link("h", "p")
    sim.schedule(5.0, lambda: None)
    sim.run()
    with pytest.raises(SimulationError):
        host.start_flow(FlowSpec(key=FlowKey("10.0.0.1", "10.0.0.2", 6, 1, 2),
                                 start_time=1.0))


def test_tunnel_zero_pops_keeps_label_for_table1():
    from repro.net.packet import Packet
    from repro.net.topology import Network
    from repro.net.tunnel import TunnelFabric
    from repro.switch.switch import PhysicalSwitch, VSwitch

    sim = Simulator()
    net = Network(sim)
    net.add(PhysicalSwitch(sim, "s0"))
    net.add(VSwitch(sim, "v0"))
    net.link("s0", "v0")
    fabric = TunnelFabric(net)
    tunnel = fabric.create("s0", "v0", terminal_pops=0)
    packet = Packet("1.1.1.1", "2.2.2.2", src_port=1, dst_port=2)
    net["s0"].datapath.execute_actions(packet, tunnel.entry_actions(net), in_port=1)
    sim.run(until=0.5)
    # Label retained through decapless terminal (GotoTable only).
    assert packet.outer_mpls_label == tunnel.tunnel_id


def test_security_app_before_any_traffic_is_quiet():
    from repro.core.security import SecurityApp
    from repro.testbed.deployment import build_deployment

    dep = build_deployment(seed=47)
    app = SecurityApp(dep.overlay)
    dep.controller.add_app(app)
    dep.sim.run(until=5.0)
    assert app.reports == []
    assert app.mitigations_installed == 0


def test_flow_spec_batch_larger_than_flow():
    from repro.net.flow import FlowKey, FlowSpec
    from repro.net.host import Host
    from repro.net.topology import Network

    sim = Simulator()
    net = Network(sim)
    a = net.add(Host(sim, "a", "10.0.0.1"))
    b = net.add(Host(sim, "b", "10.0.0.2"))
    net.link("a", "b")
    key = FlowKey("10.0.0.1", "10.0.0.2", 6, 1, 2)
    a.start_flow(FlowSpec(key=key, start_time=0.1, size_packets=3, batch=100,
                          rate_pps=10.0))
    sim.run()
    assert b.recv_tap.flow(key).packets_received == 3


def test_overlay_rule_defaults():
    from repro.core.overlay import OverlayRule
    from repro.core.config import PRIORITY_PHYSICAL_FLOW
    from repro.switch.match import Match

    rule = OverlayRule("mv0", Match.any(), [])
    assert rule.priority == PRIORITY_PHYSICAL_FLOW


def test_tcam_occupancy_estimator_decays():
    from repro.testbed.deployment import build_deployment

    dep = build_deployment(seed=48)
    app = dep.scotch
    for _ in range(10):
        app._note_install("edge")
    assert app.estimated_occupancy("edge") == 10
    dep.sim.run(until=dep.scotch.config.flow_idle_timeout + 1.0)
    assert app.estimated_occupancy("edge") == 0
    assert app.estimated_occupancy("never-seen") == 0
