"""Tests for counters/gauges/histograms and the daemon sampler."""

import pytest

from repro.obs.metrics import (
    COUNT_BUCKETS,
    Histogram,
    MetricsRegistry,
    MetricsSampler,
    read_jsonl,
)
from repro.sim.engine import Simulator


def test_counter_get_or_create():
    registry = MetricsRegistry()
    registry.counter("x").inc()
    registry.counter("x").inc(2)
    assert registry.counters["x"].value == 3


def test_gauge_callback_and_set():
    registry = MetricsRegistry()
    backing = [5]
    gauge = registry.gauge("depth", fn=lambda: backing[0])
    assert gauge.read() == 5.0
    backing[0] = 9
    assert gauge.read() == 9.0
    plain = registry.gauge("plain")
    plain.set(2.5)
    assert plain.read() == 2.5


def test_gauge_reregistration_rebinds_callback():
    registry = MetricsRegistry()
    registry.gauge("g", fn=lambda: 1)
    registry.gauge("g", fn=lambda: 2)
    assert registry.gauge("g").read() == 2.0


def test_histogram_stats():
    h = Histogram("lat", buckets=(1.0, 10.0, 100.0))
    for v in (0.5, 5.0, 50.0, 500.0):
        h.observe(v)
    assert h.count == 4
    assert h.sum == 555.5
    assert h.min == 0.5
    assert h.max == 500.0
    assert h.mean() == pytest.approx(138.875)
    assert h.counts == [1, 1, 1, 1]
    assert h.quantile(0.25) == 1.0
    assert h.quantile(1.0) == 500.0  # top bucket reports observed max


def test_histogram_rejects_unsorted_buckets():
    with pytest.raises(ValueError):
        Histogram("bad", buckets=(2.0, 1.0))
    with pytest.raises(ValueError):
        Histogram("bad", buckets=())


def test_sampler_ticks_on_daemon_events():
    sim = Simulator()
    registry = MetricsRegistry()
    registry.counter("events").inc(4)
    registry.gauge("g", fn=lambda: 7)
    sampler = MetricsSampler(sim, registry, interval=1.0, run=2)
    sampler.start()
    sim.schedule(3.5, lambda: None)  # foreground work defines the horizon
    sim.run()
    sampler.stop()
    assert sampler.ticks == 3  # t=1,2,3 (daemon events end with the work)
    assert registry.samples[0] == (2, 1.0, "g", 7.0)
    assert registry.samples[1] == (2, 1.0, "events", 4.0)


def test_sampler_rejects_bad_interval():
    with pytest.raises(ValueError):
        MetricsSampler(Simulator(), MetricsRegistry(), interval=0.0)


def test_export_jsonl(tmp_path):
    registry = MetricsRegistry()
    registry.counter("c").inc(2)
    registry.gauge("g").set(1.5)
    registry.histogram("h", buckets=COUNT_BUCKETS).observe(3)
    registry.sample(now=1.0, run=0)
    path = str(tmp_path / "m.jsonl")
    lines = registry.export_jsonl(path)
    records = read_jsonl(path)
    assert len(records) == lines == 5  # 2 samples + counter + gauge + histogram
    by_type = {}
    for record in records:
        by_type.setdefault(record["type"], []).append(record)
    assert by_type["counter"][0] == {"type": "counter", "name": "c", "value": 2}
    assert by_type["gauge"][0] == {"type": "gauge", "name": "g", "value": 1.5}
    hist = by_type["histogram"][0]
    assert hist["count"] == 1 and hist["min"] == 3 and hist["max"] == 3
    assert len(by_type["sample"]) == 2
