"""Tests for counters/gauges/histograms and the daemon sampler."""

import pytest

from repro.obs.metrics import (
    COUNT_BUCKETS,
    Histogram,
    MetricsRegistry,
    MetricsSampler,
    bucket_quantile,
    prometheus_name,
    read_jsonl,
)
from repro.sim.engine import Simulator


def test_counter_get_or_create():
    registry = MetricsRegistry()
    registry.counter("x").inc()
    registry.counter("x").inc(2)
    assert registry.counters["x"].value == 3


def test_gauge_callback_and_set():
    registry = MetricsRegistry()
    backing = [5]
    gauge = registry.gauge("depth", fn=lambda: backing[0])
    assert gauge.read() == 5.0
    backing[0] = 9
    assert gauge.read() == 9.0
    plain = registry.gauge("plain")
    plain.set(2.5)
    assert plain.read() == 2.5


def test_gauge_reregistration_rebinds_callback():
    registry = MetricsRegistry()
    registry.gauge("g", fn=lambda: 1)
    registry.gauge("g", fn=lambda: 2)
    assert registry.gauge("g").read() == 2.0


def test_histogram_stats():
    h = Histogram("lat", buckets=(1.0, 10.0, 100.0))
    for v in (0.5, 5.0, 50.0, 500.0):
        h.observe(v)
    assert h.count == 4
    assert h.sum == 555.5
    assert h.min == 0.5
    assert h.max == 500.0
    assert h.mean() == pytest.approx(138.875)
    assert h.counts == [1, 1, 1, 1]
    assert h.quantile(0.25) == 1.0
    assert h.quantile(1.0) == 500.0  # top bucket reports observed max


def test_quantile_edges_are_exact_and_clamped():
    h = Histogram("lat", buckets=(1.0, 10.0, 100.0))
    for v in (2.0, 3.0, 4.0):
        h.observe(v)
    assert h.quantile(0.0) == 2.0   # exact observed min
    assert h.quantile(1.0) == 4.0   # exact observed max
    # All values fall in the (1, 10] bucket whose bound is 10; the clamp
    # keeps mid quantiles inside the observed [min, max] range.
    assert h.quantile(0.5) == 4.0
    assert Histogram("empty").quantile(0.5) == 0.0


def test_bucket_quantile_without_known_extremes():
    # Mass in the +inf overflow bucket: falls back to the last bound
    # (or the known max when provided).
    assert bucket_quantile((1.0, 2.0), (0, 0, 5), 0.5) == 2.0
    assert bucket_quantile((1.0, 2.0), (0, 0, 5), 0.5, hi=9.0) == 9.0
    assert bucket_quantile((1.0, 2.0), (3, 2, 0), 0.5) == 1.0
    assert bucket_quantile((1.0,), (0, 0), 0.5) == 0.0


def test_histogram_rejects_unsorted_buckets():
    with pytest.raises(ValueError):
        Histogram("bad", buckets=(2.0, 1.0))
    with pytest.raises(ValueError):
        Histogram("bad", buckets=())


def test_sampler_ticks_on_daemon_events():
    sim = Simulator()
    registry = MetricsRegistry()
    registry.counter("events").inc(4)
    registry.gauge("g", fn=lambda: 7)
    sampler = MetricsSampler(sim, registry, interval=1.0, run=2)
    sampler.start()
    sim.schedule(3.5, lambda: None)  # foreground work defines the horizon
    sim.run()
    sampler.stop()
    assert sampler.ticks == 3  # t=1,2,3 (daemon events end with the work)
    assert registry.samples[0] == (2, 1.0, "g", 7.0)
    assert registry.samples[1] == (2, 1.0, "events", 4.0)


def test_sampler_stop_start_does_not_duplicate_tick_chain():
    sim = Simulator()
    registry = MetricsRegistry()
    registry.counter("c")
    sampler = MetricsSampler(sim, registry, interval=1.0)
    sampler.start()
    sampler.start()  # double start is a no-op
    sim.schedule(2.5, lambda: None)
    sim.run()
    assert sampler.ticks == 2  # t = 1, 2
    sampler.stop()
    sampler.start()  # must cancel the old chain, not run two in parallel
    sim.schedule(2.5, lambda: None)
    sim.run()
    sampler.stop()
    assert sampler.ticks == 4  # t = 3.5, 4.5 only
    # One sample per (tick, instrument): a duplicated chain would double
    # this.
    assert len(registry.samples) == 4


def test_sampler_rejects_bad_interval():
    with pytest.raises(ValueError):
        MetricsSampler(Simulator(), MetricsRegistry(), interval=0.0)


def test_export_jsonl(tmp_path):
    registry = MetricsRegistry()
    registry.counter("c").inc(2)
    registry.gauge("g").set(1.5)
    registry.histogram("h", buckets=COUNT_BUCKETS).observe(3)
    registry.sample(now=1.0, run=0)
    path = str(tmp_path / "m.jsonl")
    lines = registry.export_jsonl(path)
    records = read_jsonl(path)
    assert len(records) == lines == 5  # 2 samples + counter + gauge + histogram
    by_type = {}
    for record in records:
        by_type.setdefault(record["type"], []).append(record)
    assert by_type["counter"][0] == {"type": "counter", "name": "c", "value": 2}
    assert by_type["gauge"][0] == {"type": "gauge", "name": "g", "value": 1.5}
    hist = by_type["histogram"][0]
    assert hist["count"] == 1 and hist["min"] == 3 and hist["max"] == 3
    assert len(by_type["sample"]) == 2
    # The exported bucket counts round-trip into the shared quantile
    # helper (what the metrics-file inspector does).
    assert bucket_quantile(hist["buckets"], hist["counts"], 0.5,
                           lo=hist["min"], hi=hist["max"]) == 3


def test_prometheus_text_format(tmp_path):
    registry = MetricsRegistry()
    registry.counter("ofa.sw1.packet_ins").inc(3)
    registry.gauge("queue.depth").set(2.0)
    hist = registry.histogram("lat", buckets=(0.1, 1.0))
    for v in (0.05, 0.5, 5.0):
        hist.observe(v)
    text = registry.to_prometheus()
    assert "# TYPE scotch_ofa_sw1_packet_ins_total counter" in text
    assert "scotch_ofa_sw1_packet_ins_total 3" in text
    assert "# TYPE scotch_queue_depth gauge" in text
    assert "scotch_queue_depth 2" in text
    # Histogram buckets are cumulative and end with +Inf == count.
    assert 'scotch_lat_bucket{le="0.1"} 1' in text
    assert 'scotch_lat_bucket{le="1"} 2' in text
    assert 'scotch_lat_bucket{le="+Inf"} 3' in text
    assert "scotch_lat_count 3" in text
    assert "scotch_lat_sum" in text
    path = str(tmp_path / "m.prom")
    lines = registry.export_prometheus(path)
    with open(path) as handle:
        assert handle.read() == text
    assert lines == text.count("\n")


def test_prometheus_name_sanitization():
    assert prometheus_name("ofa.sw1.packet_ins") == "scotch_ofa_sw1_packet_ins"
    assert prometheus_name("a-b c") == "scotch_a_b_c"
    assert prometheus_name("3com") == "scotch__3com"
