"""Bidirectional traffic: reverse (ACK) flows through the same machinery."""

import pytest

from repro.controller.controller import OpenFlowController
from repro.controller.reactive_app import ReactiveForwardingApp
from repro.net.flow import FlowKey, FlowSpec
from repro.net.host import EchoServer, Host
from repro.net.topology import Network
from repro.sim.engine import Simulator
from repro.switch.profiles import IDEAL_SWITCH
from repro.switch.switch import PhysicalSwitch
from repro.testbed.deployment import build_deployment
from repro.traffic import SpoofedFlood


def test_echo_server_acks_each_train():
    sim = Simulator()
    net = Network(sim)
    client = net.add(Host(sim, "c", "10.0.0.1"))
    server = net.add(EchoServer(sim, "s", "10.0.0.2"))
    net.link("c", "s")
    key = FlowKey("10.0.0.1", "10.0.0.2", 6, 5, 80)
    client.start_flow(FlowSpec(key=key, start_time=0.1, size_packets=6, rate_pps=100.0))
    sim.run()
    assert server.acks_sent == 6
    reverse = client.recv_tap.flow(key.reversed())
    assert reverse.packets_received == 6


def test_first_ack_is_syn_rest_data():
    sim = Simulator()
    net = Network(sim)
    client = net.add(Host(sim, "c", "10.0.0.1"))
    server = net.add(EchoServer(sim, "s", "10.0.0.2"))
    net.link("c", "s")
    flags = []
    client.on_receive = lambda p: flags.append(p.tcp_flag)
    key = FlowKey("10.0.0.1", "10.0.0.2", 6, 5, 80)
    client.start_flow(FlowSpec(key=key, start_time=0.1, size_packets=4, rate_pps=100.0))
    sim.run()
    assert flags[0] == "SYN"
    assert all(f == "DATA" for f in flags[1:])


def test_echo_servers_do_not_ack_acks():
    sim = Simulator()
    net = Network(sim)
    a = net.add(EchoServer(sim, "a", "10.0.0.1"))
    b = net.add(EchoServer(sim, "b", "10.0.0.2"))
    net.link("a", "b")
    key = FlowKey("10.0.0.1", "10.0.0.2", 6, 5, 80)
    a.start_flow(FlowSpec(key=key, start_time=0.1, size_packets=3, rate_pps=100.0))
    sim.run(until=10.0)
    assert b.acks_sent == 3
    assert a.acks_sent == 0  # no ack storm


def test_reverse_flow_installed_reactively_across_switch():
    sim = Simulator()
    net = Network(sim)
    sw = net.add(PhysicalSwitch(sim, "sw", IDEAL_SWITCH))
    client = net.add(Host(sim, "c", "10.0.0.1"))
    server = net.add(EchoServer(sim, "s", "10.0.0.2"))
    net.link("c", "sw")
    net.link("s", "sw")
    controller = OpenFlowController(sim, net)
    controller.register_switch(sw)
    controller.add_app(ReactiveForwardingApp())
    key = FlowKey("10.0.0.1", "10.0.0.2", 6, 5, 80)
    client.start_flow(FlowSpec(key=key, start_time=0.1, size_packets=10, rate_pps=50.0))
    sim.run(until=2.0)
    # The reverse direction got its own rule at the switch.
    reverse_rules = [
        e for e in sw.datapath.table(0).entries()
        if e.match.has_five_tuple and e.match.five_tuple_key() == tuple(key.reversed())
    ]
    assert reverse_rules
    assert client.recv_tap.flow(key.reversed()).packets_received >= 8


@pytest.mark.slow
def test_bidirectional_under_scotch_protection():
    """Request/response traffic survives a flood: forward flows via the
    overlay and their ACK flows (new flows at an *uncongested* switch)
    reactively — both directions deliver."""
    dep = build_deployment(seed=91)
    sim = dep.sim
    # Swap the first server for an echo server.
    server = dep.servers[0]
    echo = EchoServer(sim, "echo0", "10.0.9.9")
    dep.network.add(echo)
    dep.network.link("echo0", dep.host_vswitches[0].name, 1e9)
    dep.overlay.set_host_delivery("echo0", dep.host_vswitches[0].name, "mv0_0")
    dep.scotch.router.refresh_hosts()

    flood = SpoofedFlood(sim, dep.attacker, echo.ip, rate_fps=1500.0)
    flood.start(at=0.5, stop_at=14.0)
    # Request/response flows must carry the client's *real* source
    # address (ACKs have to route back), so vary ports, not sources.
    n_flows = 240
    for index in range(n_flows):
        key = FlowKey(dep.client.ip, echo.ip, 6, 2000 + index, 80)
        dep.client.start_flow(FlowSpec(
            key=key, start_time=4.0 + index * (8.0 / n_flows),
            size_packets=5, rate_pps=50.0,
        ))
    sim.run(until=16.0)

    # Forward direction delivered...
    sent = {k for k, r in dep.client.sent_tap.records.items()
            if r.packets_sent and k.src_ip == dep.client.ip}
    forward_ok = sum(1 for k in sent if (rec := echo.recv_tap.flow(k)) and rec.packets_received >= 4)
    assert forward_ok / len(sent) > 0.9
    # ... and so were the ACK (reverse) flows back to the client.
    acked = sum(
        1 for k in sent
        if (rec := dep.client.recv_tap.flow(k.reversed())) and rec.packets_received >= 3
    )
    assert acked / len(sent) > 0.9
