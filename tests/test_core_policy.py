"""Tests for middlebox policy consistency (§5.4)."""

import pytest

from repro.core.config import PRIORITY_PHYSICAL_FLOW
from repro.core.overlay import OverlayError, ScotchOverlay
from repro.core.policy import PRIORITY_MB_GREEN, Policy, PolicyRegistry
from repro.net.flow import FlowKey
from repro.net.host import Host
from repro.net.middlebox import Firewall
from repro.net.topology import Network
from repro.sim.engine import Simulator
from repro.switch.actions import Output, PopMpls, PushMpls
from repro.switch.switch import PhysicalSwitch, VSwitch

KEY = FlowKey("10.20.0.1", "10.0.0.10", 6, 5, 80)


def build():
    sim = Simulator()
    net = Network(sim)
    for name in ("edge", "spine", "tor"):
        net.add(PhysicalSwitch(sim, name))
    net.link("edge", "spine")
    net.link("spine", "tor")
    net.add(VSwitch(sim, "mv0"))
    net.add(VSwitch(sim, "mv1"))
    net.link("mv0", "tor")
    net.link("mv1", "edge")
    net.add(Host(sim, "server", "10.0.0.10"))
    net.link("server", "tor")
    net.add(Firewall(sim, "fw"))
    net.link("edge", "fw")
    net.link("fw", "spine")

    overlay = ScotchOverlay(net)
    overlay.add_mesh_vswitch("mv0")
    overlay.add_mesh_vswitch("mv1")
    overlay.set_host_delivery("server", None, "mv0")
    overlay.register_switch("edge")
    registry = PolicyRegistry(net, overlay)
    return sim, net, overlay, registry


def test_attach_installs_green_plumbing():
    sim, net, overlay, registry = build()
    attachment = registry.attach_middlebox("fw", upstream="edge", downstream="spine")
    # S_U terminal rules output into the middlebox port.
    mb_port = net.port_between("edge", "fw")
    for vswitch in ("mv0", "mv1"):
        tunnel = attachment.in_tunnels[vswitch]
        terminal = [
            e for e in net["edge"].datapath.table(0).entries()
            if e.match.fields.get("mpls_label") == tunnel.tunnel_id
        ]
        assert terminal[0].actions == [PopMpls(), Output(mb_port)]
    # S_D green rule matches the middlebox-facing port and re-encapsulates.
    sd_port = net.port_between("spine", "fw")
    green = [
        e for e in net["spine"].datapath.table(0).entries()
        if e.match.fields.get("in_port") == sd_port
    ]
    assert len(green) == 1
    assert green[0].priority == PRIORITY_MB_GREEN
    assert isinstance(green[0].actions[0], PushMpls)
    assert green[0].actions[0].label == attachment.out_tunnel.tunnel_id


def test_middlebox_excluded_from_plain_routing():
    sim, net, overlay, registry = build()
    registry.attach_middlebox("fw", upstream="edge", downstream="spine")
    # fw would be a shortcut edge<->spine, but must not be transit.
    assert registry.physical_path("edge", "server", []) == ["edge", "spine", "tor", "server"]


def test_physical_path_with_chain_goes_through_instance():
    sim, net, overlay, registry = build()
    registry.attach_middlebox("fw", upstream="edge", downstream="spine")
    path = registry.physical_path("edge", "server", ["fw"])
    assert path == ["edge", "fw", "spine", "tor", "server"]


def test_chain_for_uses_first_matching_policy():
    sim, net, overlay, registry = build()
    registry.attach_middlebox("fw", upstream="edge", downstream="spine")
    registry.add_policy(Policy("web", lambda k: k.dst_port == 80, ["fw"]))
    registry.add_policy(Policy("fallback", lambda k: True, []))
    assert registry.chain_for(KEY) == ["fw"]
    assert registry.chain_for(FlowKey("a", "b", 6, 1, 443)) == []


def test_policy_with_unattached_middlebox_rejected():
    sim, net, overlay, registry = build()
    with pytest.raises(OverlayError):
        registry.add_policy(Policy("bad", lambda k: True, ["ghost"]))


def test_overlay_route_with_chain_rule_shape():
    sim, net, overlay, registry = build()
    attachment = registry.attach_middlebox("fw", upstream="edge", downstream="spine",
                                           aggregation_vswitch="mv0")
    rules = registry.overlay_route(KEY, "mv1", "server", ["fw"])
    # Last-hop-first; forward order: mv1 (entry, into FW) then mv0
    # (post-FW, label-qualified, delivers).
    assert [r.dpid for r in rules] == ["mv0", "mv1"]
    entry = rules[-1]
    assert entry.priority == PRIORITY_PHYSICAL_FLOW
    assert entry.actions[0].label == attachment.in_tunnels["mv1"].tunnel_id
    post = rules[0]
    assert post.priority == PRIORITY_PHYSICAL_FLOW + 1
    assert post.match.fields["mpls_label"] == attachment.out_tunnel.tunnel_id
    assert post.actions[0] == PopMpls()


def test_overlay_route_entry_equals_aggregation():
    """The tricky case: entry vSwitch == aggregation vSwitch.  Fresh
    arrivals hit the into-middlebox rule; post-middlebox (labelled)
    arrivals hit the higher-priority qualified rule."""
    sim, net, overlay, registry = build()
    attachment = registry.attach_middlebox("fw", upstream="edge", downstream="spine",
                                           aggregation_vswitch="mv0")
    rules = registry.overlay_route(KEY, "mv0", "server", ["fw"])
    assert [r.dpid for r in rules] == ["mv0", "mv0"]
    priorities = sorted(r.priority for r in rules)
    assert priorities == [PRIORITY_PHYSICAL_FLOW, PRIORITY_PHYSICAL_FLOW + 1]
    # The two rules have different matches, so both can coexist.
    matches = {r.match.key() for r in rules}
    assert len(matches) == 2


def test_overlay_route_without_chain_delegates():
    sim, net, overlay, registry = build()
    rules = registry.overlay_route(KEY, "mv0", "server", [])
    assert len(rules) == 1
    assert rules[0].dpid == "mv0"
