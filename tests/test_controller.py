"""Tests for the controller framework and the reactive baseline app."""

import pytest

from repro.controller.base_app import BaseApp
from repro.controller.controller import OpenFlowController
from repro.controller.reactive_app import ReactiveForwardingApp
from repro.controller.stats_service import StatsPoller
from repro.net.flow import FlowKey, FlowSpec
from repro.net.host import Host
from repro.net.topology import Network
from repro.openflow.messages import FlowStatsReply
from repro.sim.engine import Simulator
from repro.switch.profiles import IDEAL_SWITCH
from repro.switch.switch import PhysicalSwitch


class RecordingApp(BaseApp):
    def __init__(self):
        super().__init__()
        self.events = []

    def packet_in(self, dpid, message):
        self.events.append(("packet_in", dpid))

    def stats_reply(self, dpid, message):
        self.events.append(("stats", dpid))

    def echo_reply(self, dpid, message):
        self.events.append(("echo", dpid))

    def barrier_reply(self, dpid, message):
        self.events.append(("barrier", dpid))


def build(n_switches=1, profile=IDEAL_SWITCH, hosts=()):
    sim = Simulator()
    net = Network(sim)
    controller = OpenFlowController(sim, net)
    switches = []
    for i in range(n_switches):
        sw = net.add(PhysicalSwitch(sim, f"s{i}", profile))
        controller.register_switch(sw)
        switches.append(sw)
    for i in range(n_switches - 1):
        net.link(f"s{i}", f"s{i+1}")
    host_objs = []
    for name, ip, attach in hosts:
        host = net.add(Host(sim, name, ip))
        net.link(name, attach)
        host_objs.append(host)
    return sim, net, controller, switches, host_objs


def test_duplicate_registration_rejected():
    sim, net, controller, switches, _ = build()
    with pytest.raises(ValueError):
        controller.register_switch(switches[0])


def test_event_dispatch_to_apps():
    sim, net, controller, (sw,), _ = build()
    app = controller.add_app(RecordingApp())
    sw.receive_packet = None
    controller.echo("s0")
    controller.request_flow_stats("s0")
    sim.run()
    kinds = [kind for kind, _ in app.events]
    assert "echo" in kinds and "stats" in kinds


def test_flow_mod_helper_installs_rule():
    from repro.switch.actions import Output
    from repro.switch.match import Match

    sim, net, controller, (sw,), _ = build()
    controller.flow_mod("s0", Match(dst_ip="9.9.9.9"), 10, [Output(1)])
    sim.run()
    assert len(sw.datapath.table(0)) == 1


def test_packet_out_helper():
    from repro.net.packet import Packet
    from repro.switch.actions import Output

    sim, net, controller, (sw,), _ = build()
    controller.packet_out("s0", Packet("1.1.1.1", "2.2.2.2"), [Output(77)])
    sim.run()
    assert sw.datapath.dropped_no_route == 1


def test_reactive_app_single_switch_end_to_end():
    sim, net, controller, (sw,), hosts = build(
        hosts=[("client", "10.0.0.1", "s0"), ("server", "10.0.0.2", "s0")]
    )
    controller.add_app(ReactiveForwardingApp())
    client, server = hosts
    key = FlowKey("10.0.0.1", "10.0.0.2", 6, 5, 80)
    client.start_flow(FlowSpec(key=key, start_time=0.1, size_packets=5, rate_pps=20.0))
    sim.run()
    assert server.recv_tap.flow(key).packets_received == 5


def test_reactive_app_multi_hop_converges():
    sim, net, controller, switches, hosts = build(
        n_switches=3,
        hosts=[("client", "10.0.0.1", "s0"), ("server", "10.0.0.2", "s2")],
    )
    app = controller.add_app(ReactiveForwardingApp())
    client, server = hosts
    key = FlowKey("10.0.0.1", "10.0.0.2", 6, 5, 80)
    client.start_flow(FlowSpec(key=key, start_time=0.1, size_packets=20, rate_pps=50.0))
    sim.run()
    # All packets eventually delivered (early ones may cascade Packet-Ins).
    assert server.recv_tap.flow(key).packets_received >= 18
    # Rules present along the path.
    for sw in switches:
        assert len(sw.datapath.table(0)) >= 1


def test_reactive_app_unroutable_counted():
    from repro.net.packet import Packet

    sim, net, controller, (sw,), hosts = build(
        hosts=[("client", "10.0.0.1", "s0")]
    )
    app = controller.add_app(ReactiveForwardingApp())
    hosts[0].send(Packet("10.0.0.1", "99.99.99.99"))
    sim.run()
    assert app.unroutable == 1


def test_stats_poller_polls_targets():
    sim, net, controller, (sw,), _ = build()
    app = controller.add_app(RecordingApp())
    poller = StatsPoller(controller, targets=lambda: ["s0"], interval=0.5)
    poller.start()
    sim.schedule(2.2, poller.stop)
    sim.run(until=4.0)
    stats_events = [e for e in app.events if e[0] == "stats"]
    assert len(stats_events) == 4
    assert poller.polls_sent == 4


def test_stats_poller_validates_interval():
    sim, net, controller, _, _ = build()
    with pytest.raises(ValueError):
        StatsPoller(controller, targets=lambda: [], interval=0)
