"""Tests for the Fig. 7 controller-side queueing system."""

import pytest

from repro.controller.controller import OpenFlowController
from repro.core.config import ScotchConfig
from repro.core.flow_manager import (
    DROPPED,
    QUEUED,
    InstallJob,
    InstallScheduler,
    MigrationRequest,
    PathInstaller,
    PendingFlow,
)
from repro.net.flow import FlowKey
from repro.net.topology import Network
from repro.openflow.messages import FlowMod
from repro.sim.engine import Simulator
from repro.switch.actions import Output
from repro.switch.match import Match
from repro.switch.profiles import IDEAL_SWITCH
from repro.switch.switch import PhysicalSwitch, VSwitch


def build(rate=100.0, config=None, n_switches=1):
    sim = Simulator()
    net = Network(sim)
    controller = OpenFlowController(sim, net)
    for i in range(n_switches):
        sw = net.add(PhysicalSwitch(sim, f"s{i}", IDEAL_SWITCH))
        controller.register_switch(sw)
    config = config or ScotchConfig()
    admitted, overlaid = [], []
    schedulers = {}
    for i in range(n_switches):
        schedulers[f"s{i}"] = InstallScheduler(
            sim, controller, f"s{i}", rate, config,
            on_admit=admitted.append, on_overlay=overlaid.append,
        )
    return sim, controller, schedulers, admitted, overlaid


def pending(index, port=1, first_hop="s0"):
    key = FlowKey(f"10.0.0.{index % 250}", "10.0.1.1", 6, 1000 + index, 80)
    return PendingFlow(key=key, first_hop=first_hop, ingress_port=port, packet=None)


def job(dpid="s0", priority=100, on_sent=None):
    mod = FlowMod(match=Match(dst_ip="9.9.9.9"), priority=priority, actions=[Output(1)])
    return InstallJob(dpid, mod, on_sent=on_sent)


class TestScheduler:
    def test_new_flows_served_at_rate_r(self):
        sim, _, schedulers, admitted, _ = build(rate=10.0)
        s = schedulers["s0"]
        for i in range(30):
            s.submit_new_flow(pending(i))
        sim.run(until=1.0)
        assert 8 <= len(admitted) <= 12

    def test_drop_threshold_enforced(self):
        config = ScotchConfig(overlay_threshold=2, drop_threshold=5)
        sim, _, schedulers, _, _ = build(rate=1.0, config=config)
        s = schedulers["s0"]
        outcomes = [s.submit_new_flow(pending(i)) for i in range(8)]
        assert outcomes.count(DROPPED) == 3
        assert s.flows_dropped == 3

    def test_overlay_drain_takes_over_threshold_tail(self):
        config = ScotchConfig(overlay_threshold=3, drop_threshold=100,
                              overlay_install_rate=1000.0)
        sim, _, schedulers, admitted, overlaid = build(rate=1.0, config=config)
        s = schedulers["s0"]
        s.set_overlay_enabled(True)
        for i in range(20):
            s.submit_new_flow(pending(i))
        sim.run(until=0.9)
        # Overlay drain pulls the queue down to the threshold quickly;
        # the rate-R server has served none yet (rate=1).
        assert len(overlaid) == 17
        assert s.port_backlog(1) == 3

    def test_overlay_disabled_no_drain(self):
        config = ScotchConfig(overlay_threshold=3, drop_threshold=100)
        sim, _, schedulers, _, overlaid = build(rate=1.0, config=config)
        s = schedulers["s0"]
        for i in range(20):
            s.submit_new_flow(pending(i))
        sim.run(until=0.5)
        assert overlaid == []

    def test_overlay_drain_takes_newest_first(self):
        config = ScotchConfig(overlay_threshold=1, drop_threshold=100,
                              overlay_install_rate=10000.0)
        sim, _, schedulers, _, overlaid = build(rate=0.001, config=config)
        s = schedulers["s0"]
        s.set_overlay_enabled(True)
        flows = [pending(i) for i in range(5)]
        for f in flows:
            s.submit_new_flow(f)
        sim.run(until=0.5)
        # Tail-drain: the newest flows go to the overlay; the oldest stays
        # queued for physical admission.
        assert flows[0] not in overlaid
        assert flows[-1] in overlaid

    def test_priority_admitted_over_migration_over_ingress(self):
        sim, controller, schedulers, admitted, _ = build(rate=1000.0)
        s = schedulers["s0"]
        order = []
        s.submit_new_flow(pending(1))
        s.submit_migration(MigrationRequest(run=lambda: order.append("migration")))
        s.submit_admitted(job(on_sent=lambda: order.append("admitted")))
        original_on_admit = s.on_admit
        s.on_admit = lambda p: order.append("ingress")
        sim.run(until=0.1)
        assert order == ["admitted", "migration", "ingress"]

    def test_round_robin_across_ports(self):
        sim, _, schedulers, admitted, _ = build(rate=1000.0)
        s = schedulers["s0"]
        for i in range(10):
            s.submit_new_flow(pending(i, port=1))
        for i in range(2):
            s.submit_new_flow(pending(100 + i, port=2))
        sim.run(until=0.005)
        ports = [p.ingress_port for p in admitted[:4]]
        assert ports.count(2) >= 1  # port 2 not starved by port 1's backlog

    def test_admitted_jobs_sent_to_switch(self):
        sim, controller, schedulers, _, _ = build(rate=1000.0)
        s = schedulers["s0"]
        s.submit_admitted(job())
        sim.run(until=0.1)
        assert len(controller.datapaths["s0"].switch.datapath.table(0)) == 1
        assert s.mods_sent == 1

    def test_backlog_counts_admitted_and_migration(self):
        sim, _, schedulers, _, _ = build(rate=0.001)
        s = schedulers["s0"]
        s.submit_admitted(job())
        s.submit_migration(MigrationRequest(run=lambda: None))
        assert s.backlog() == 2

    def test_invalid_rate_rejected(self):
        sim, controller, schedulers, _, _ = build()
        with pytest.raises(ValueError):
            InstallScheduler(sim, controller, "s0", 0.0, ScotchConfig(),
                             on_admit=lambda p: None, on_overlay=lambda p: None)


class TestPathInstaller:
    def test_sequenced_install_last_hop_first(self):
        sim, controller, schedulers, _, _ = build(rate=1000.0, n_switches=3)
        installer = PathInstaller(controller, schedulers, settle_delay=0.001)
        sent_order = []
        jobs = [
            job(dpid="s2", on_sent=lambda: sent_order.append("s2")),
            job(dpid="s1", on_sent=lambda: sent_order.append("s1")),
            job(dpid="s0", on_sent=lambda: sent_order.append("s0")),
        ]
        done = []
        installer.install(jobs, on_complete=lambda: done.append(sim.now))
        sim.run(until=1.0)
        assert sent_order == ["s2", "s1", "s0"]
        assert done and done[0] > 0

    def test_vswitch_jobs_bypass_schedulers(self):
        sim, controller, schedulers, _, _ = build(rate=0.001)  # scheduler ~stuck
        vswitch = controller.network.add(VSwitch(sim, "v0", IDEAL_SWITCH))
        controller.register_switch(vswitch)
        installer = PathInstaller(controller, schedulers, settle_delay=0.001)
        done = []
        installer.install([job(dpid="v0")], on_complete=lambda: done.append(True))
        sim.run(until=0.5)
        assert done == [True]
        assert len(vswitch.datapath.table(0)) == 1

    def test_empty_job_list_completes_immediately(self):
        sim, controller, schedulers, _, _ = build()
        installer = PathInstaller(controller, schedulers)
        done = []
        installer.install([], on_complete=lambda: done.append(True))
        assert done == [True]
