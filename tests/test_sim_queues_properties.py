"""Property tests for :mod:`repro.sim.queues`.

Pins the queueing contracts the switch model leans on: FIFO order even
when producers fire at identical simulation timestamps (the engine's
same-time coalescing must not reorder them), bounded-capacity drop
accounting, and round-robin service that matches the documented
reference semantics (rotation in registration order, resuming after the
last served key).
"""

from collections import deque

from hypothesis import given, strategies as st

from repro.sim.engine import Simulator
from repro.sim.queues import BoundedQueue, RoundRobinScheduler


@given(
    st.lists(
        st.tuples(st.sampled_from([0.0, 0.5, 1.0]), st.integers(0, 9)),
        min_size=1,
        max_size=40,
    )
)
def test_queue_is_fifo_under_same_time_events(pushes):
    """Pushes scheduled at the same timestamp land in scheduling order:
    popping returns a stable sort of the items by push time."""
    sim = Simulator()
    queue = BoundedQueue()
    for time, item in pushes:
        sim.schedule_at(time, queue.push, item)
    sim.run()
    expected = [item for _, item in sorted(pushes, key=lambda push: push[0])]
    assert [queue.pop() for _ in range(len(pushes))] == expected


@given(st.integers(1, 5), st.lists(st.integers(0, 9), max_size=15))
def test_bounded_queue_drops_beyond_capacity(capacity, items):
    queue = BoundedQueue(capacity)
    results = [queue.offer(item) for item in items]
    kept = min(len(items), capacity)
    assert results == [True] * kept + [False] * (len(items) - kept)
    assert len(queue) == kept
    assert queue.enqueued == kept
    assert queue.dropped == len(items) - kept
    assert list(queue) == items[:kept]  # the FIFO prefix survives


@st.composite
def round_robin_ops(draw):
    queue_count = draw(st.integers(1, 5))
    ops = draw(
        st.lists(
            st.one_of(
                st.tuples(
                    st.just("push"),
                    st.integers(0, queue_count - 1),
                    st.integers(0, 9),
                ),
                st.tuples(st.just("pop"), st.just(0), st.just(0)),
            ),
            min_size=1,
            max_size=60,
        )
    )
    return queue_count, ops


@given(round_robin_ops())
def test_round_robin_matches_reference_model(args):
    """The position-indexed scheduler behaves exactly like the naive
    reference: scan registration order starting after the last served
    key, serve the first non-empty queue."""
    queue_count, ops = args
    scheduler = RoundRobinScheduler()
    for key in range(queue_count):
        scheduler.add_queue(key, BoundedQueue())

    model = {key: deque() for key in range(queue_count)}
    last_served = None
    for op, key, item in ops:
        if op == "push":
            scheduler.get_queue(key).push(item)
            model[key].append(item)
        else:
            start = 0 if last_served is None else last_served + 1
            expected = None
            for offset in range(queue_count):
                candidate = (start + offset) % queue_count
                if model[candidate]:
                    last_served = candidate
                    expected = (candidate, model[candidate].popleft())
                    break
            assert scheduler.pop_next() == expected
    assert scheduler.total_backlog() == sum(len(q) for q in model.values())


@given(st.integers(2, 6), st.integers(1, 4))
def test_round_robin_serves_each_nonempty_queue_once_per_cycle(queue_count, rounds):
    """Fairness: while every queue stays non-empty, each cycle of
    ``queue_count`` pops serves every queue exactly once."""
    scheduler = RoundRobinScheduler()
    for key in range(queue_count):
        scheduler.add_queue(key, BoundedQueue())
        for round_index in range(rounds):
            scheduler.get_queue(key).push((key, round_index))
    served = [scheduler.pop_next()[0] for _ in range(queue_count * rounds)]
    for cycle in range(rounds):
        window = served[cycle * queue_count:(cycle + 1) * queue_count]
        assert sorted(window) == list(range(queue_count))
