"""PeriodicTimer + per-daemon restart regressions (tick-chain doubling).

The bug class: a periodic daemon whose ``stop()`` only flips a flag
leaves the already-scheduled tick alive in the calendar; ``start()``
then schedules a second chain, and the surviving tick re-arms itself
when it fires — every stop/start cycle doubles the tick rate forever.
``repro.sim.process.PeriodicTimer`` owns the pending event so stop()
always cancels it; these tests pin the behaviour for the helper itself
and for every daemon migrated onto it (the heartbeat/congestion/stats
monitors have their own suite in test_monitor_restart.py).
"""

from repro.faults.invariants import InvariantChecker
from repro.obs.health import HealthEngine
from repro.obs.metrics import MetricsRegistry, MetricsSampler
from repro.sim.engine import Simulator
from repro.sim.process import PeriodicTimer

import pytest


# ----------------------------------------------------------------------
# The helper itself
# ----------------------------------------------------------------------
def test_timer_runs_and_rearms():
    sim = Simulator()
    ticks = []

    class Daemon:
        def __init__(self):
            self.timer = PeriodicTimer(sim, 0.1, self.tick)

        def tick(self):
            if not self.timer.running:
                return
            ticks.append(sim.now)
            self.timer.rearm()

    daemon = Daemon()
    daemon.timer.start()
    sim.run(until=1.05)
    assert len(ticks) == 10


def test_timer_stop_cancels_pending_event_and_rearm_noops():
    sim = Simulator()
    fired = []
    timer = PeriodicTimer(sim, 0.5, lambda: fired.append(sim.now))
    timer.start()
    assert timer.event is not None
    timer.stop()
    assert timer.event is None and not timer.running
    timer.rearm()  # must not resurrect the chain
    sim.run(until=3.0)
    assert fired == []


def test_timer_stop_start_cycles_never_double_the_chain():
    sim = Simulator()
    ticks = []

    class Daemon:
        def __init__(self):
            self.timer = PeriodicTimer(sim, 0.1, self.tick)

        def tick(self):
            if not self.timer.running:
                return
            ticks.append(sim.now)
            self.timer.rearm()

    daemon = Daemon()
    daemon.timer.start()
    sim.run(until=1.0)
    window1 = len(ticks)
    for _ in range(4):
        daemon.timer.stop()
        daemon.timer.start()
    sim.run(until=2.0)
    window2 = len(ticks) - window1
    assert window2 <= window1 + 1  # same rate, small phase slack


def test_timer_start_is_idempotent():
    sim = Simulator()
    ticks = []

    class Daemon:
        def __init__(self):
            self.timer = PeriodicTimer(sim, 0.25, self.tick)

        def tick(self):
            ticks.append(sim.now)
            self.timer.rearm()

    daemon = Daemon()
    daemon.timer.start()
    daemon.timer.start()
    daemon.timer.start()
    sim.run(until=1.05)
    assert len(ticks) == 4


def test_timer_rejects_nonpositive_interval():
    with pytest.raises(ValueError):
        PeriodicTimer(Simulator(), 0.0, lambda: None)


# ----------------------------------------------------------------------
# Migrated daemons, one regression each
# ----------------------------------------------------------------------
def _cycle(daemon, times=3):
    for _ in range(times):
        daemon.stop()
        daemon.start()


def test_health_engine_restart_does_not_double_ticks():
    sim = Simulator()
    engine = HealthEngine(sim, MetricsRegistry(), rules=[], interval=0.25)
    engine.start()
    sim.run(until=2.0)
    window1 = engine.ticks
    _cycle(engine)
    sim.run(until=4.0)
    assert engine.ticks - window1 <= window1 + 1
    engine.stop()
    assert engine._tick_event is None


def test_metrics_sampler_restart_does_not_double_ticks():
    sim = Simulator()
    sampler = MetricsSampler(sim, MetricsRegistry(), interval=0.25)
    sampler.start()
    sim.run(until=2.0)
    window1 = sampler.ticks
    _cycle(sampler)
    sim.run(until=4.0)
    assert sampler.ticks - window1 <= window1 + 1
    sampler.stop()
    assert sampler._tick_event is None


def test_invariant_checker_restart_does_not_double_checks():
    """The checker's old stop() never cancelled the pending tick — this
    was a live instance of the doubling bug (inert only because nothing
    stop/started it mid-run)."""
    from repro.testbed.deployment import build_deployment

    dep = build_deployment(seed=4, racks=2, mesh_per_rack=1, backups=1)
    checker = InvariantChecker(dep.sim, dep.network, dep.overlay,
                               scotch=dep.scotch, interval=0.25)
    checker.start()
    dep.sim.run(until=2.0)
    window1 = checker.checks_run
    _cycle(checker)
    dep.sim.run(until=4.0)
    assert checker.checks_run - window1 <= window1 + 1


def test_sampling_service_restart_does_not_double_exports():
    from repro.core.config import ScotchConfig
    from repro.testbed.deployment import build_deployment

    config = ScotchConfig(stats_mode="sample", sample_export_interval=0.25)
    dep = build_deployment(seed=4, racks=2, mesh_per_rack=1, backups=1,
                           config=config)
    service = dep.scotch.stats_service
    dep.sim.run(until=2.0)
    vswitch = dep.mesh_vswitches[0].name
    window1 = dep.scotch.stats_service.samplers[vswitch].reports_sent
    _cycle(service)
    dep.sim.run(until=4.0)
    window2 = service.samplers[vswitch].reports_sent - window1
    assert window2 <= window1 + 2  # restart may re-phase by one export
