"""Shared pytest configuration for the test suite.

Pins Hypothesis to a deterministic profile by default: property tests
run the same example sequence on every machine and in CI
(``derandomize=True``), so a red build is reproducible by running the
same command locally — no flaky shrink sessions.  Set
``HYPOTHESIS_PROFILE=dev`` to explore with fresh random examples
locally (e.g. before merging an engine change).
"""

import os

from hypothesis import HealthCheck, settings

settings.register_profile(
    "ci",
    derandomize=True,
    deadline=None,
    print_blob=True,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.register_profile("dev", deadline=None)
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "ci"))
