"""Tests for group tables (select-type load balancing)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.net.packet import Packet
from repro.switch.actions import Output
from repro.switch.group_table import Bucket, GroupEntry, GroupTable


def make_packet(sport):
    return Packet("1.1.1.1", "2.2.2.2", src_port=sport, dst_port=80)


def make_group(n_buckets=3, group_type="select", weights=None):
    weights = weights or [1] * n_buckets
    buckets = [Bucket(actions=[Output(i + 1)], weight=weights[i], label=f"b{i}")
               for i in range(n_buckets)]
    return GroupEntry(1, group_type, buckets)


def test_select_is_sticky_per_flow():
    group = make_group()
    packet = make_packet(1234)
    chosen = group.select_bucket(packet)
    for _ in range(10):
        assert group.select_bucket(make_packet(1234)) is chosen


def test_select_spreads_across_buckets():
    group = make_group(4)
    chosen = {group.select_bucket(make_packet(p)).label for p in range(200)}
    assert chosen == {"b0", "b1", "b2", "b3"}


def test_select_roughly_balanced():
    group = make_group(2)
    counts = {"b0": 0, "b1": 0}
    for p in range(1000):
        counts[group.select_bucket(make_packet(p)).label] += 1
    assert 350 < counts["b0"] < 650


def test_weighted_selection_respects_weights():
    group = make_group(2, weights=[3, 1])
    counts = {"b0": 0, "b1": 0}
    for p in range(2000):
        counts[group.select_bucket(make_packet(p)).label] += 1
    assert counts["b0"] > counts["b1"] * 2


def test_indirect_group_uses_first_bucket():
    group = make_group(1, group_type="indirect")
    assert group.select_bucket(make_packet(1)).label == "b0"


def test_empty_group_returns_none():
    group = GroupEntry(1, "select", [])
    assert group.select_bucket(make_packet(1)) is None


def test_invalid_group_type_rejected():
    with pytest.raises(ValueError):
        GroupEntry(1, "bogus")


def test_bucket_weight_validation():
    with pytest.raises(ValueError):
        Bucket(actions=[], weight=0)


def test_hash_seed_changes_mapping():
    a = GroupEntry(1, "select", [Bucket([Output(i)]) for i in range(4)], hash_seed=0)
    b = GroupEntry(1, "select", [Bucket([Output(i)]) for i in range(4)], hash_seed=1)
    differs = any(
        a.select_bucket(make_packet(p)) is not a.buckets[
            b.buckets.index(b.select_bucket(make_packet(p)))]
        for p in range(50)
    )
    assert differs


def test_replace_bucket_keeps_other_positions():
    group = make_group(3)
    before = [group.select_bucket(make_packet(p)).label for p in range(100)]
    old = group.replace_bucket(1, Bucket(actions=[Output(99)], label="backup"))
    assert old.label == "b1"
    after = [group.select_bucket(make_packet(p)).label for p in range(100)]
    for b, a in zip(before, after):
        if b != "b1":
            assert a == b  # unrelated flows did not move
        else:
            assert a == "backup"


def test_find_bucket():
    group = make_group(3)
    assert group.find_bucket("b2") == 2
    assert group.find_bucket("zz") is None


def test_group_table_crud():
    table = GroupTable()
    group = make_group()
    table.add(group)
    assert 1 in table
    assert table.get(1) is group
    with pytest.raises(ValueError):
        table.add(make_group())
    replacement = make_group(2)
    table.modify(replacement)
    assert table.get(1) is replacement
    table.remove(1)
    assert table.get(1) is None
    with pytest.raises(KeyError):
        table.modify(make_group())


@given(st.integers(min_value=1, max_value=6), st.integers(min_value=0, max_value=65535))
@settings(max_examples=100, deadline=None)
def test_selection_always_valid_bucket(n_buckets, sport):
    group = make_group(n_buckets)
    bucket = group.select_bucket(make_packet(sport))
    assert bucket in group.buckets
