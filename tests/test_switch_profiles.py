"""Sanity checks on the calibrated device models (DESIGN.md §7)."""

from repro.switch.profiles import (
    HOST_VSWITCH,
    HP_PROCURVE_6600,
    IDEAL_SWITCH,
    OPEN_VSWITCH,
    PICA8_PRONTO_3780,
)


def test_pica8_matches_paper_constants():
    p = PICA8_PRONTO_3780
    assert p.packet_in_rate == 200.0          # Fig. 4
    assert p.install_lossless_rate == 200.0   # Fig. 9 lossless break
    assert p.install_saturated_rate == 1000.0  # Fig. 9 plateau
    assert p.degradation_knee == 1300.0       # Fig. 10 turning point
    assert p.port_rate_bps == 10e9            # §3.2 "10 Gbps data ports"
    assert p.supports_groups and p.supports_tunnels
    assert p.n_tables >= 3                    # §5.2 needs two tables + static


def test_hp_has_higher_ofa_but_no_advanced_dataplane():
    hp = HP_PROCURVE_6600
    assert hp.packet_in_rate > PICA8_PRONTO_3780.packet_in_rate  # Fig. 3
    assert not hp.supports_groups
    assert not hp.supports_tunnels  # §3.3: why the paper uses Pica8
    assert hp.port_rate_bps == 1e9


def test_ovs_control_path_dwarfs_hardware_switches():
    ovs = OPEN_VSWITCH
    assert ovs.packet_in_rate >= 10 * PICA8_PRONTO_3780.packet_in_rate
    assert ovs.install_lossless_rate >= 10 * PICA8_PRONTO_3780.install_lossless_rate
    # ... but its data plane is far below hardware (§4).
    assert ovs.datapath_pps < PICA8_PRONTO_3780.datapath_pps
    assert ovs.degradation_knee == float("inf")  # no HW/SW write contention


def test_datapath_gap_is_orders_of_magnitude():
    """§4: the control path is 'several orders of magnitude lower' than
    the data plane."""
    p = PICA8_PRONTO_3780
    assert p.datapath_pps / p.packet_in_rate >= 1000


def test_variant_overrides_single_field():
    variant = PICA8_PRONTO_3780.variant(tcam_capacity=16)
    assert variant.tcam_capacity == 16
    assert variant.packet_in_rate == PICA8_PRONTO_3780.packet_in_rate
    # The original is untouched (frozen dataclass).
    assert PICA8_PRONTO_3780.tcam_capacity == 8192


def test_host_vswitch_is_an_ovs_variant():
    assert HOST_VSWITCH.packet_in_rate == OPEN_VSWITCH.packet_in_rate
    assert HOST_VSWITCH.name != OPEN_VSWITCH.name


def test_ideal_switch_effectively_unconstrained():
    assert IDEAL_SWITCH.packet_in_rate >= 1e6
    assert IDEAL_SWITCH.tcam_capacity >= 1e6
