"""Tests for the packet model and encapsulation stack."""

import pytest
from hypothesis import given, strategies as st

from repro.net.flow import FlowKey
from repro.net.packet import (
    GRE_OVERHEAD,
    MPLS_OVERHEAD,
    GreHeader,
    MplsHeader,
    Packet,
)


def make_packet(**kwargs):
    defaults = dict(src_ip="10.0.0.1", dst_ip="10.0.0.2", src_port=1000, dst_port=80)
    defaults.update(kwargs)
    return Packet(**defaults)


def test_flow_key_reflects_inner_tuple():
    packet = make_packet()
    assert packet.flow_key == FlowKey("10.0.0.1", "10.0.0.2", 6, 1000, 80)


def test_push_pop_lifo():
    packet = make_packet()
    packet.push(MplsHeader(7))
    packet.push(MplsHeader(9))
    assert packet.outer_mpls_label == 9
    assert packet.pop() == MplsHeader(9)
    assert packet.outer_mpls_label == 7


def test_pop_empty_raises():
    with pytest.raises(ValueError):
        make_packet().pop()


def test_outer_accessors_for_gre():
    packet = make_packet()
    packet.push(GreHeader(key=1234))
    assert packet.outer_gre_key == 1234
    assert packet.outer_mpls_label is None


def test_wire_size_includes_encap_overhead():
    packet = make_packet(size=1000)
    assert packet.wire_size == 1000
    packet.push(MplsHeader(1))
    assert packet.wire_size == 1000 + MPLS_OVERHEAD
    packet.push(GreHeader(2))
    assert packet.wire_size == 1000 + MPLS_OVERHEAD + GRE_OVERHEAD


def test_wire_bits_scales_with_count():
    packet = make_packet(size=100, count=10)
    assert packet.wire_bits == 100 * 8 * 10


def test_flow_key_unchanged_by_encap():
    packet = make_packet()
    key = packet.flow_key
    packet.push(MplsHeader(5))
    assert packet.flow_key == key


def test_invalid_sizes_rejected():
    with pytest.raises(ValueError):
        make_packet(size=0)
    with pytest.raises(ValueError):
        make_packet(count=0)


def test_mpls_label_range():
    with pytest.raises(ValueError):
        MplsHeader(1 << 20)
    with pytest.raises(ValueError):
        MplsHeader(-1)


def test_gre_key_range():
    with pytest.raises(ValueError):
        GreHeader(1 << 32)


def test_packet_ids_unique():
    assert make_packet().packet_id != make_packet().packet_id


def test_note_hop_records_path():
    packet = make_packet()
    packet.note_hop("sw1")
    packet.note_hop("sw2")
    assert packet.hops == ["sw1", "sw2"]


@given(st.lists(st.integers(min_value=0, max_value=(1 << 20) - 1), max_size=8))
def test_push_pop_roundtrip_property(labels):
    packet = make_packet()
    for label in labels:
        packet.push(MplsHeader(label))
    popped = []
    while packet.encap:
        popped.append(packet.pop().label)
    assert popped == list(reversed(labels))
