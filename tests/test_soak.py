"""A soak scenario: everything at once, over a minute of simulated time.

Two attack waves, a flash crowd, elephants, a vSwitch failure and
recovery, activation/withdrawal cycles — ending with the system back in
its quiescent state and every invariant intact.  This is the longest
single test in the suite and exists to catch slow leaks and interaction
bugs that short scenarios miss.
"""

import pytest

pytestmark = pytest.mark.slow

from repro.core.config import PRIORITY_SCOTCH_DEFAULT, ScotchConfig
from repro.metrics import client_flow_failure_fraction
from repro.net.flow import FlowKey, FlowSpec
from repro.testbed.deployment import build_deployment
from repro.traffic import NewFlowSource, SpoofedFlood


@pytest.fixture(scope="module")
def soaked():
    dep = build_deployment(seed=99, racks=2, servers_per_rack=2,
                           mesh_per_rack=1, backups=1)
    sim = dep.sim
    victim = dep.servers[0].ip
    other = dep.servers[-1].ip

    # Steady legitimate load for the whole hour^Wminute.
    client = NewFlowSource(sim, dep.client, victim, rate_fps=60.0)
    client.start(at=0.5, stop_at=58.0)

    # Wave 1: spoofed flood.
    wave1 = SpoofedFlood(sim, dep.attacker, victim, rate_fps=2000.0, rng_name="w1")
    wave1.start(at=5.0, stop_at=15.0)
    # Flash crowd to a different server mid-run (pooled sources).
    crowd = NewFlowSource(sim, dep.attacker, other, rate_fps=800.0,
                          src_net=31, source_pool=30, rng_name="crowd")
    crowd.start(at=20.0, stop_at=28.0)
    # Wave 2: second flood after a quiet period.
    wave2 = SpoofedFlood(sim, dep.attacker, victim, rate_fps=1500.0, rng_name="w2")
    wave2.start(at=38.0, stop_at=46.0)

    # Elephants during both waves (enter on the attacked port).
    keys = []
    for index, start in enumerate((7.0, 40.0)):
        key = FlowKey(f"10.99.1.{index}", victim, 6, 7000 + index, 80)
        dep.attacker.start_flow(FlowSpec(
            key=key, start_time=start, size_packets=3000, packet_size=1500,
            rate_pps=500.0, batch=10))
        keys.append(key)

    # A mesh vSwitch dies during wave 1 and returns during the lull.
    victim_vswitch = dep.mesh_vswitches[0]
    sim.schedule(9.0, victim_vswitch.fail)
    sim.schedule(30.0, victim_vswitch.recover)

    sim.run(until=60.0)
    return dep, keys


def test_soak_client_protected_throughout(soaked):
    """Outside the failover detection gap (vSwitch dies at t=9; three
    missed 1 s heartbeats before the bucket swap), the client is fully
    protected in every phase."""
    dep, _ = soaked
    for window in ((6.0, 8.8), (13.5, 14.8), (21.0, 27.0), (39.0, 45.0), (50.0, 57.0)):
        failure = client_flow_failure_fraction(
            dep.client.sent_tap, dep.servers[0].recv_tap,
            start=window[0], end=window[1])
        assert failure < 0.05, f"window {window}: {failure}"


def test_soak_failover_gap_bounded(soaked):
    """During the detection gap itself, only the flows hashed to the
    dead vSwitch are lost — roughly half, never everything."""
    dep, _ = soaked
    failure = client_flow_failure_fraction(
        dep.client.sent_tap, dep.servers[0].recv_tap, start=9.0, end=13.0)
    assert failure < 0.8


def test_soak_lifecycle_counts(soaked):
    dep, _ = soaked
    app = dep.scotch
    assert app.activations >= 2          # both waves triggered
    assert app.withdrawal.withdrawals >= 1
    assert app.heartbeat.failures_detected == 1
    assert app.heartbeat.recoveries_detected == 1


def test_soak_elephants_migrated_losslessly(soaked):
    dep, keys = soaked
    for key in keys:
        record = dep.servers[0].recv_tap.flow(key)
        assert record is not None
        assert record.packets_received == 3000


def test_soak_returns_to_quiescence(soaked):
    dep, _ = soaked
    app = dep.scotch
    assert app.overlay.active == set()
    defaults = [e for e in dep.edge.datapath.table(0).entries()
                if e.priority == PRIORITY_SCOTCH_DEFAULT]
    assert defaults == []
    # Controller state bounded: dead flows retired, not accumulated.
    assert len(app.flow_db) < 12_000
    assert app.flows_retired > 5_000


def test_soak_no_unbounded_queues(soaked):
    dep, _ = soaked
    for scheduler in dep.scotch.schedulers.values():
        assert scheduler.backlog() < 100
        assert scheduler.ingress.total_backlog() < 300
