"""Tests for the canned testbeds and the report formatter."""

import pytest

from repro.net.host import Host
from repro.switch.profiles import HP_PROCURVE_6600, OPEN_VSWITCH
from repro.switch.switch import PhysicalSwitch, VSwitch
from repro.testbed.deployment import build_deployment
from repro.testbed.report import format_table
from repro.testbed.single_switch import SERVER_IP, build_single_switch


class TestSingleSwitch:
    def test_default_layout(self):
        bed = build_single_switch()
        assert bed.switch.name == "sw1"
        assert bed.server.ip == SERVER_IP
        assert len(bed.clients) == 1
        assert bed.client is bed.clients[0]
        # attacker, client, server all on data ports.
        assert len(bed.switch.ports) == 3

    def test_multiple_clients_get_distinct_ports(self):
        bed = build_single_switch(n_clients=3)
        ports = set()
        for client in bed.clients:
            port = bed.network.port_between("sw1", client.name)
            ports.add(port)
        assert len(ports) == 3

    def test_profile_applied(self):
        bed = build_single_switch(profile=HP_PROCURVE_6600)
        assert bed.switch.profile is HP_PROCURVE_6600

    def test_custom_app_factory(self):
        from repro.controller.base_app import BaseApp

        class Probe(BaseApp):
            pass

        bed = build_single_switch(app_factory=Probe)
        assert any(isinstance(a, Probe) for a in bed.controller.apps)


class TestDeployment:
    def test_default_inventory(self):
        dep = build_deployment(seed=1, racks=2, servers_per_rack=2, mesh_per_rack=1)
        assert len(dep.tors) == 2
        assert len(dep.servers) == 4
        assert len(dep.host_vswitches) == 2
        assert len(dep.mesh_vswitches) == 2
        assert dep.scotch is not None
        # All physical switches registered with the overlay.
        assert set(dep.overlay.assignment) == {"edge", "spine", "tor0", "tor1"}

    def test_all_switches_registered_with_controller(self):
        dep = build_deployment(seed=1)
        for name, node in dep.network.nodes.items():
            if isinstance(node, (PhysicalSwitch, VSwitch)):
                assert name in dep.controller.datapaths

    def test_backups_in_overlay_not_in_assignment(self):
        dep = build_deployment(seed=1, backups=2)
        assert len(dep.overlay.backups) == 2
        for serving in dep.overlay.assignment.values():
            assert not set(serving) & set(dep.overlay.backups)

    def test_host_delivery_configured_for_every_server(self):
        dep = build_deployment(seed=1, racks=2, servers_per_rack=2)
        for server in dep.servers:
            assert server.name in dep.overlay.local_mesh_of
            assert server.name in dep.overlay.host_vswitch_of

    def test_firewall_wiring(self):
        dep = build_deployment(seed=1, with_firewall=True)
        assert dep.firewall is not None
        assert "fw0" in dep.policy.attachments
        key_chain = dep.policy.chain_for(
            __import__("repro.net.flow", fromlist=["FlowKey"]).FlowKey(
                "1.1.1.1", dep.servers[0].ip, 6, 1, 80
            )
        )
        assert key_chain == ["fw0"]

    def test_no_scotch_app_option(self):
        dep = build_deployment(seed=1, add_scotch_app=False)
        assert dep.scotch is None
        assert dep.controller.apps == []

    def test_invalid_shape_rejected(self):
        with pytest.raises(ValueError):
            build_deployment(racks=0)

    def test_deterministic_construction(self):
        a = build_deployment(seed=7)
        b = build_deployment(seed=7)
        assert sorted(a.network.nodes) == sorted(b.network.nodes)
        assert a.overlay.assignment == b.overlay.assignment


class TestReport:
    def test_alignment_and_title(self):
        table = format_table(
            ["name", "value"],
            [["a", 1.5], ["long-name", 20000.0]],
            title="T",
        )
        lines = table.splitlines()
        assert lines[0] == "T"
        assert lines[1].startswith("name")
        assert "long-name" in lines[-1]
        # All data rows at least as wide as the header separator.
        assert len(lines[-1]) >= len(lines[2].rstrip())

    def test_float_formatting(self):
        table = format_table(["x"], [[0.12345], [12345.6], [3.14159], [0.0]])
        assert "0.1235" in table     # small floats get 4 decimals
        assert "12346" in table      # large floats rounded to integers
        assert "3.14" in table
