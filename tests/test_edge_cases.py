"""Assorted edge cases across modules (gaps found by review)."""

import pytest

from repro.metrics.meters import RateEstimator
from repro.net.host import Host
from repro.net.node import Node
from repro.net.topology import Network
from repro.sim.engine import Simulator
from repro.switch.match import Match
from repro.switch.flow_table import FlowEntry, FlowTable
from repro.switch.actions import Drop


def test_rate_estimator_instantaneous_burst_is_finite():
    est = RateEstimator(window_events=8)
    for _ in range(8):
        est.observe(5.0)  # all at the same instant
    rate = est.rate(5.0)
    assert rate > 0
    assert rate < float("inf")


def test_node_port_to_unknown_neighbor():
    sim = Simulator()
    node = Host(sim, "h", "10.0.0.1")
    assert node.port_to("nowhere") is None


def test_node_receive_abstract():
    sim = Simulator()
    node = Node(sim, "n")
    with pytest.raises(NotImplementedError):
        node.receive(None, 1)


def test_flow_table_remove_uses_index_for_qualified_matches():
    table = FlowTable()
    from repro.net.flow import FlowKey

    key = FlowKey("1.1.1.1", "2.2.2.2", 6, 1, 2)
    qualified = Match(mpls_label=9, **Match.for_flow(key).fields)
    table.insert(FlowEntry(qualified, 101, [Drop()]))
    table.insert(FlowEntry(Match.for_flow(key), 100, [Drop()]))
    assert table.remove(qualified, priority=101) == 1
    assert len(table) == 1


def test_flow_table_on_expired_receives_reason():
    table = FlowTable()
    seen = []
    table.on_expired = lambda entry, reason: seen.append(reason)
    from repro.net.flow import FlowKey

    key = FlowKey("1.1.1.1", "2.2.2.2", 6, 1, 2)
    table.insert(FlowEntry(Match.for_flow(key), 100, [Drop()], idle_timeout=1.0), now=0.0)
    table.insert(FlowEntry(Match(dst_ip="3.3.3.3"), 100, [Drop()], hard_timeout=1.0), now=0.0)
    table.expire(now=5.0)
    assert sorted(seen) == ["hard_timeout", "idle_timeout"]


def test_expiry_sweep_can_be_disabled():
    from repro.switch.profiles import IDEAL_SWITCH
    from repro.switch.switch import PhysicalSwitch

    sim = Simulator()
    net = Network(sim)
    sw = net.add(PhysicalSwitch(sim, "s", IDEAL_SWITCH, expiry_sweep_interval=0))
    sim.run(until=5.0)
    assert sim.pending == 0  # no recurring sweep events


def test_expiry_sweep_runs_by_default():
    from repro.net.flow import FlowKey
    from repro.switch.actions import Output
    from repro.switch.profiles import IDEAL_SWITCH
    from repro.switch.switch import PhysicalSwitch

    sim = Simulator()
    net = Network(sim)
    sw = net.add(PhysicalSwitch(sim, "s", IDEAL_SWITCH))
    key = FlowKey("1.1.1.1", "2.2.2.2", 6, 1, 2)
    sw.install_static(Match.for_flow(key), 100, [Output(1)], idle_timeout=2.0)
    sim.run(until=5.0)
    assert len(sw.datapath.table(0)) == 0  # swept without manual expire


def test_source_pool_bounds_distinct_sources():
    from repro.traffic.generators import flow_key_sequence

    gen = flow_key_sequence("10.0.0.1", source_pool=5)
    keys = [next(gen) for _ in range(500)]
    assert len({k.src_ip for k in keys}) == 5
    assert len(set(keys)) == 500  # ports keep them unique flows


def test_source_pool_validation():
    from repro.net.host import Host
    from repro.traffic.generators import NewFlowSource

    sim = Simulator()
    net = Network(sim)
    host = net.add(Host(sim, "h", "10.0.0.1"))
    with pytest.raises(ValueError):
        NewFlowSource(sim, host, "10.0.0.2", rate_fps=1.0, source_pool=0)


def test_monitor_force_congested_idempotent():
    from repro.core.config import ScotchConfig
    from repro.core.monitor import CongestionMonitor
    from repro.switch.profiles import PICA8_PRONTO_3780

    sim = Simulator()
    fired = []
    monitor = CongestionMonitor(sim, ScotchConfig(), fired.append, lambda d: None)
    monitor.watch("sw", PICA8_PRONTO_3780)
    monitor.force_congested("sw")
    monitor.force_congested("sw")
    assert fired == ["sw"]
    monitor.force_congested("unknown")  # silently ignored
    assert fired == ["sw"]
