"""Critical-path analysis: journey grouping, per-stage attribution that
reconciles with end-to-end durations, longest-chain extraction, and the
JSONL/HTML renderings."""

import json

import pytest

from repro.obs import Observability, observed
from repro.obs.critpath import (
    UNATTRIBUTED,
    attribute,
    attribution_rows,
    format_tree,
    has_causality,
    journeys,
    longest_chain,
    render_html,
    report_jsonl,
)
from repro.obs.path import SPAN_PACKET_IN
from repro.testbed.single_switch import SERVER_IP, build_single_switch
from repro.traffic import NewFlowSource, SpoofedFlood


# ----------------------------------------------------------------------
# Synthetic traces
# ----------------------------------------------------------------------
def _span(name, t0, t1, span_id=None, journey=None, run=0, **args):
    if journey is not None:
        args["journey"] = journey
    record = {"type": "span", "run": run, "name": name, "cat": "control",
              "track": "t", "t0": t0, "t1": t1, "args": args}
    if span_id is not None:
        record["id"] = span_id
    return record


def _synthetic_trace():
    return [
        _span(SPAN_PACKET_IN, 0.0, 1.0, span_id=1, switch="sw1", route="open"),
        _span("ofa.queue", 0.0, 0.4, span_id=2, journey=1),
        _span("channel.to_controller", 0.4, 0.7, span_id=3, journey=1),
        _span("controller.handle", 0.7, 1.0, span_id=4, journey=1),
        _span(SPAN_PACKET_IN, 2.0, 4.0, span_id=5, switch="sw1", route="open"),
        _span("ofa.queue", 2.0, 3.5, span_id=6, journey=5),
        _span("controller.handle", 3.5, 4.0, span_id=7, journey=5),
        # Orphan stage (unknown journey) and still-open span: ignored.
        _span("ofa.queue", 9.0, 9.5, span_id=8, journey=99),
        _span(SPAN_PACKET_IN, 5.0, None, span_id=9),
    ]


def test_journeys_group_stages_under_their_packet_in():
    grouped = journeys(_synthetic_trace())
    assert [j["id"] for j in grouped] == [1, 5]
    assert [len(j["stages"]) for j in grouped] == [3, 2]
    assert grouped[0]["duration"] == 1.0
    assert [s["name"] for s in grouped[0]["stages"]] == [
        "ofa.queue", "channel.to_controller", "controller.handle"]


def test_attribute_reconciles_and_reports_percentiles():
    report = attribute(_synthetic_trace())
    assert report["journeys"] == 2
    assert report["total_s"] == 3.0
    stages = report["stages"]
    # Every journey contributes one unattributed sample (0 here: the
    # stages tile each journey exactly).
    assert stages[UNATTRIBUTED]["count"] == 2
    assert stages[UNATTRIBUTED]["total_s"] == 0.0
    assert report["reconciliation"] == {"max_abs_gap_s": 0.0,
                                        "negative_gaps": 0}
    # Stage totals sum to the journey total — the reconciliation law.
    assert sum(s["total_s"] for s in stages.values()) == report["total_s"]
    assert stages["ofa.queue"]["count"] == 2
    assert stages["ofa.queue"]["total_s"] == pytest.approx(1.9)
    assert stages["ofa.queue"]["p50_ms"] == pytest.approx(950.0)
    assert stages["ofa.queue"]["max_ms"] == pytest.approx(1500.0)
    assert stages["channel.to_controller"]["share"] == pytest.approx(0.3 / 3.0)


def test_attribute_reports_gaps_when_stages_do_not_tile():
    trace = [
        _span(SPAN_PACKET_IN, 0.0, 1.0, span_id=1, route="open"),
        _span("ofa.queue", 0.0, 0.25, span_id=2, journey=1),
    ]
    report = attribute(trace)
    assert report["stages"][UNATTRIBUTED]["total_s"] == pytest.approx(0.75)
    assert report["reconciliation"]["max_abs_gap_s"] == pytest.approx(0.75)
    assert report["reconciliation"]["negative_gaps"] == 0


def test_longest_chain_and_tree_rendering():
    chain = longest_chain(_synthetic_trace())
    assert chain["id"] == 5 and chain["duration"] == 2.0
    tree = format_tree(chain)
    assert "packet_in #5" in tree
    assert "ofa.queue" in tree and UNATTRIBUTED in tree
    assert longest_chain([]) is None


def test_has_causality():
    assert has_causality(_synthetic_trace())
    assert not has_causality([
        {"type": "span", "name": SPAN_PACKET_IN, "t0": 0.0, "t1": 1.0,
         "args": {}}])


def test_report_jsonl_and_html():
    records = _synthetic_trace()
    report = attribute(records)
    chain = longest_chain(records)
    lines = [json.loads(line)
             for line in report_jsonl(report, chain).splitlines()]
    assert lines[0]["type"] == "critpath_summary"
    assert lines[0]["journeys"] == 2
    stage_lines = [l for l in lines if l["type"] == "critpath_stage"]
    assert {l["stage"] for l in stage_lines} == set(report["stages"])
    assert lines[-1]["type"] == "critpath_longest"
    assert [s["name"] for s in lines[-1]["stages"]] == [
        "ofa.queue", "controller.handle"]
    page = render_html(report, chain, title="T")
    assert page.startswith("<!DOCTYPE html>")
    assert "ofa.queue" in page and "Longest chain" in page
    # Empty traces render the explanatory fallback, not a broken table.
    empty = render_html(attribute([]))
    assert "No completed Packet-In journeys" in empty


# ----------------------------------------------------------------------
# The fig3 scenario (acceptance: stage sums reconcile with end-to-end)
# ----------------------------------------------------------------------
def _fig3_causality_records():
    obs = Observability(trace=True, metrics=False, causality=True)
    with observed(obs):
        bed = build_single_switch(seed=1)
        client = NewFlowSource(bed.sim, bed.client, SERVER_IP, rate_fps=100.0)
        attack = SpoofedFlood(bed.sim, bed.attacker, SERVER_IP, rate_fps=500.0)
        client.start(at=0.5, stop_at=2.5)
        attack.start(at=0.5, stop_at=2.5)
        bed.sim.run(until=3.5)
    return obs.tracer.records(include_open=False)


@pytest.mark.slow
def test_fig3_stage_sums_reconcile_with_journey_durations():
    records = _fig3_causality_records()
    grouped = journeys(records)
    assert len(grouped) > 50, "the fig3 workload must produce journeys"
    for journey in grouped:
        covered = sum(s["t1"] - s["t0"] for s in journey["stages"])
        # Stages tile the journey: the float-tolerance acceptance bound.
        assert covered == pytest.approx(journey["duration"], abs=1e-9)
    report = attribute(records)
    assert report["reconciliation"]["max_abs_gap_s"] < 1e-9
    assert sum(s["total_s"] for s in report["stages"].values()) == \
        pytest.approx(report["total_s"], abs=1e-6)
    # The paper's stages all appear in the attribution.
    assert {"ofa.queue", "channel.to_controller",
            "controller.handle"} <= set(report["stages"])
    rows = attribution_rows(report)
    assert len(rows) == len(report["stages"])
