"""Golden-master determinism tests.

The fixtures in ``tests/golden/golden.json`` were generated with the
pre-optimization engine (see ``tests/golden/regen.py``).  These tests
recompute every digest and model result with the current code: the
optimized hot path must produce byte-identical JSONL artifacts (engine
fire sequence, control-path trace, fault log, alert timeline) and
bit-identical model results on the same seeds.

A failure here means observable behaviour drifted.  If the drift is
*intended* (a deliberate semantic change, called out in the commit),
regenerate with ``PYTHONPATH=src python tests/golden/regen.py``;
otherwise it is a bug in whatever was just optimized.
"""

import json
import os

import pytest

from tests.golden import regen

pytestmark = pytest.mark.slow

GOLDEN_PATH = regen.GOLDEN_PATH


@pytest.fixture(scope="module")
def golden():
    if not os.path.exists(GOLDEN_PATH):
        pytest.fail("tests/golden/golden.json missing — run "
                    "`PYTHONPATH=src python tests/golden/regen.py`")
    with open(GOLDEN_PATH) as handle:
        return json.load(handle)


def _assert_section(expected: dict, actual: dict, section: str) -> None:
    mismatches = []
    for key in expected:
        if key not in actual:
            mismatches.append(f"{section}.{key}: missing from recomputation")
        elif actual[key] != expected[key]:
            mismatches.append(
                f"{section}.{key}: fixture {expected[key]!r} != "
                f"recomputed {actual[key]!r}")
    assert not mismatches, (
        "golden-master drift (behaviour changed on a fixed seed):\n  "
        + "\n  ".join(mismatches)
        + "\nIf this change is intended, regenerate the fixtures with "
          "`PYTHONPATH=src python tests/golden/regen.py` and explain the "
          "drift in the commit message."
    )


def test_engine_fire_sequence_is_golden(golden):
    _assert_section(golden["engine"], regen.engine_workload(), "engine")


def test_trace_jsonl_is_byte_identical(golden, tmp_path):
    _assert_section(golden["traced_run"], regen.traced_run(str(tmp_path)),
                    "traced_run")


def test_chaos_fault_and_alert_jsonl_are_byte_identical(golden):
    _assert_section(golden["mini_chaos"], regen.mini_chaos(), "mini_chaos")


def test_schema_versions_are_pinned(golden):
    _assert_section(golden["schemas"], regen.schema_versions(), "schemas")
