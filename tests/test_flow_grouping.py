"""Tests for pluggable fair-sharing groups (§5.2 flow grouping).

"In general, we can classify the flows into different groups and enforce
fair sharing of the SDN network across groups. For example, we can group
the flows according to which customer it belongs to."
"""

from repro.core.app import ScotchApp
from repro.core.config import ScotchConfig
from repro.core.overlay import ScotchOverlay
from repro.core.policy import PolicyRegistry
from repro.testbed.deployment import build_deployment
from repro.traffic import NewFlowSource


def customer_of(pending) -> str:
    """Group flows by the /16 'customer' prefix of their source."""
    parts = pending.key.src_ip.split(".")
    return f"{parts[0]}.{parts[1]}"


def build_grouped_deployment(seed=51):
    """A deployment whose Scotch app groups by customer instead of port."""
    dep = build_deployment(seed=seed, racks=2, mesh_per_rack=1, add_scotch_app=False)
    app = ScotchApp(
        dep.overlay,
        config=dep.overlay.config,
        policy=PolicyRegistry(dep.network, dep.overlay),
        group_key=customer_of,
    )
    dep.controller.add_app(app)
    return dep, app


def test_default_grouping_is_per_port():
    dep = build_deployment(seed=50)
    scheduler = dep.scotch.schedulers["edge"]
    from repro.core.flow_manager import PendingFlow
    from repro.net.flow import FlowKey

    pending = PendingFlow(
        key=FlowKey("10.1.2.3", "10.0.0.10", 6, 1, 80),
        first_hop="edge", ingress_port=7, packet=None,
    )
    assert scheduler.group_key(pending) == 7


def test_customer_grouping_isolates_victim_on_shared_port():
    """Two customers share the attacker host's switch port.  Customer
    10.66/16 floods; customer 10.21/16 is legitimate.  Per-port queues
    cannot tell them apart, but per-customer queues give the victim its
    own fair share of R."""
    dep, app = build_grouped_deployment()
    sim = dep.sim
    server_ip = dep.servers[0].ip
    # Both customers originate from the *same host/port*.
    flood = NewFlowSource(sim, dep.attacker, server_ip, rate_fps=1500.0,
                          src_net=66, rng_name="cust-flood")
    victim = NewFlowSource(sim, dep.attacker, server_ip, rate_fps=50.0,
                           src_net=21, rng_name="cust-victim")
    flood.start(at=0.5, stop_at=12.0)
    victim.start(at=0.5, stop_at=12.0)
    sim.run(until=14.0)

    arrived = dep.servers[0].recv_tap.received_flow_keys()
    victim_sent = {
        k for k, r in dep.attacker.sent_tap.records.items()
        if r.packets_sent and k.src_ip.startswith("10.21.")
        and 2.0 <= (r.first_sent_at or 0) < 11.0
    }
    victim_failure = sum(1 for k in victim_sent if k not in arrived) / len(victim_sent)
    assert victim_failure < 0.05
    # The scheduler really did build one queue per customer.
    scheduler = app.schedulers["edge"]
    group_keys = set(scheduler.ingress.queues())
    assert "10.66" in group_keys and "10.21" in group_keys


def test_per_port_grouping_cannot_isolate_same_port_customers():
    """Control experiment: with the default per-port grouping the victim
    shares the attacker's single queue, so its flows fight the flood for
    the same service share and (without Scotch's overlay they would all
    fail; with it they survive via the overlay, but many are served
    *later* than under customer grouping).  We assert the structural
    difference: only one ingress queue exists for the shared port."""
    dep = build_deployment(seed=51)
    sim = dep.sim
    server_ip = dep.servers[0].ip
    flood = NewFlowSource(sim, dep.attacker, server_ip, rate_fps=1500.0,
                          src_net=66, rng_name="cust-flood")
    victim = NewFlowSource(sim, dep.attacker, server_ip, rate_fps=50.0,
                           src_net=21, rng_name="cust-victim")
    flood.start(at=0.5, stop_at=10.0)
    victim.start(at=0.5, stop_at=10.0)
    sim.run(until=12.0)
    scheduler = dep.scotch.schedulers["edge"]
    attacked_port = dep.network.port_between("edge", "attacker")
    assert set(scheduler.ingress.queues()) == {attacked_port}
