"""Tests for flow identity and descriptors."""

import pytest

from repro.net.flow import FlowKey, FlowRecord, FlowSpec


def test_flow_key_reversed():
    key = FlowKey("a", "b", 6, 1, 2)
    assert key.reversed() == FlowKey("b", "a", 6, 2, 1)
    assert key.reversed().reversed() == key


def test_flow_key_is_hashable_and_ordered_fields():
    key = FlowKey("1.1.1.1", "2.2.2.2", 6, 10, 20)
    assert hash(key) == hash(FlowKey("1.1.1.1", "2.2.2.2", 6, 10, 20))
    assert key.src_ip == "1.1.1.1"
    assert key.dst_port == 20


def test_flow_spec_validation():
    key = FlowKey("a", "b", 6, 1, 2)
    with pytest.raises(ValueError):
        FlowSpec(key=key, start_time=0, size_packets=0)
    with pytest.raises(ValueError):
        FlowSpec(key=key, start_time=0, packet_size=0)
    with pytest.raises(ValueError):
        FlowSpec(key=key, start_time=0, rate_pps=0)
    with pytest.raises(ValueError):
        FlowSpec(key=key, start_time=0, batch=0)


def test_flow_spec_size_bytes():
    spec = FlowSpec(key=FlowKey("a", "b", 6, 1, 2), start_time=0,
                    size_packets=10, packet_size=100)
    assert spec.size_bytes == 1000


def test_flow_record_success_and_latency():
    record = FlowRecord(FlowKey("a", "b", 6, 1, 2))
    assert record.succeeded is False
    assert record.setup_latency is None
    record.first_sent_at = 1.0
    record.first_received_at = 1.25
    record.last_received_at = 3.0
    record.packets_received = 5
    assert record.succeeded is True
    assert record.setup_latency == pytest.approx(0.25)
    assert record.completion_time == pytest.approx(2.0)
