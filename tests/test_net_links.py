"""Tests for links, ports, and the base node."""

import pytest

from repro.net.links import DirectedLink, connect
from repro.net.node import Node
from repro.net.packet import Packet
from repro.sim.engine import Simulator


class Sink(Node):
    def __init__(self, sim, name):
        super().__init__(sim, name)
        self.received = []

    def receive(self, packet, in_port):
        self.received.append((self.sim.now, packet, in_port))


def make_packet(size=1000, count=1):
    return Packet("10.0.0.1", "10.0.0.2", size=size, count=count)


def test_connect_creates_ports_both_sides():
    sim = Simulator()
    a, b = Sink(sim, "a"), Sink(sim, "b")
    port_a, port_b = connect(sim, a, b)
    assert port_a.node is a and port_b.node is b
    assert a.port_to("b") is port_a
    assert b.port_to("a") is port_b


def test_delivery_delay_is_serialization_plus_propagation():
    sim = Simulator()
    a, b = Sink(sim, "a"), Sink(sim, "b")
    port_a, _ = connect(sim, a, b, rate_bps=8000.0, delay=0.5)
    port_a.send(make_packet(size=1000))  # 8000 bits / 8000 bps = 1 s
    sim.run()
    time, _, in_port = b.received[0]
    assert time == pytest.approx(1.5)


def test_queueing_serializes_back_to_back_packets():
    sim = Simulator()
    a, b = Sink(sim, "a"), Sink(sim, "b")
    port_a, _ = connect(sim, a, b, rate_bps=8000.0, delay=0.0)
    port_a.send(make_packet(size=1000))
    port_a.send(make_packet(size=1000))
    sim.run()
    times = [t for t, _, _ in b.received]
    assert times == pytest.approx([1.0, 2.0])


def test_drop_tail_when_queue_full():
    sim = Simulator()
    a, b = Sink(sim, "a"), Sink(sim, "b")
    port_a, _ = connect(sim, a, b, rate_bps=8.0, delay=0.0, queue_packets=2)
    for _ in range(5):
        port_a.send(make_packet(size=1))
    sim.run(until=0.1)
    link = port_a.link
    # One in service + two queued; the rest dropped.
    assert link.dropped == 2


def test_count_aware_serialization():
    sim = Simulator()
    a, b = Sink(sim, "a"), Sink(sim, "b")
    port_a, _ = connect(sim, a, b, rate_bps=8000.0, delay=0.0)
    port_a.send(make_packet(size=1000, count=3))
    sim.run()
    assert b.received[0][0] == pytest.approx(3.0)


def test_bidirectional_traffic():
    sim = Simulator()
    a, b = Sink(sim, "a"), Sink(sim, "b")
    port_a, port_b = connect(sim, a, b, rate_bps=1e9, delay=0.01)
    port_a.send(make_packet())
    port_b.send(make_packet())
    sim.run()
    assert len(a.received) == 1
    assert len(b.received) == 1


def test_port_counters():
    sim = Simulator()
    a, b = Sink(sim, "a"), Sink(sim, "b")
    port_a, _ = connect(sim, a, b)
    port_a.send(make_packet(size=100, count=2))
    assert port_a.tx_packets == 2
    assert port_a.tx_bytes == 200


def test_unattached_port_drops_silently():
    sim = Simulator()
    a = Sink(sim, "a")
    port = a.allocate_port()
    port.send(make_packet())  # no exception
    sim.run()


def test_link_validation():
    sim = Simulator()
    b = Sink(sim, "b")
    with pytest.raises(ValueError):
        DirectedLink(sim, rate_bps=0, delay=0, dst_node=b, dst_port_no=1)
    with pytest.raises(ValueError):
        DirectedLink(sim, rate_bps=1, delay=-1, dst_node=b, dst_port_no=1)


def test_node_port_numbering():
    sim = Simulator()
    node = Sink(sim, "n")
    p1 = node.allocate_port()
    p2 = node.allocate_port()
    assert (p1.port_no, p2.port_no) == (1, 2)
    assert node.port(2) is p2
