"""Tests for measurement: recorders, failure fraction, meters, stats."""

import pytest
from hypothesis import given, strategies as st

from repro.metrics.failure import client_flow_failure_fraction, flow_success_stats
from repro.metrics.meters import Ewma, RateEstimator, WindowRateMeter
from repro.metrics.recorder import PacketRecorder
from repro.metrics.series import TimeSeries, sample_periodically
from repro.metrics.stats import cdf_points, mean, percentile, stddev
from repro.net.flow import FlowKey
from repro.net.packet import Packet
from repro.sim.engine import Simulator


def packet(sport=1):
    return Packet("1.1.1.1", "2.2.2.2", src_port=sport, dst_port=80)


class TestRecorder:
    def test_send_receive_accounting(self):
        tap = PacketRecorder()
        tap.on_send(packet(1), 1.0)
        tap.on_receive(packet(1), 2.0)
        record = tap.flow(FlowKey("1.1.1.1", "2.2.2.2", 6, 1, 80))
        assert record.first_sent_at == 1.0
        assert record.first_received_at == 2.0
        assert record.setup_latency == 1.0

    def test_received_in_window(self):
        tap = PacketRecorder()
        tap.on_receive(packet(1), 1.0)
        tap.on_receive(packet(2), 5.0)
        assert len(tap.received_in(0.0, 2.0)) == 1
        assert len(tap.received_in(0.0, 10.0)) == 2

    def test_count_aware(self):
        tap = PacketRecorder()
        p = packet(1)
        p.count = 7
        tap.on_receive(p, 1.0)
        assert tap.total_packets == 7


class TestFailureFraction:
    def test_basic_fraction(self):
        client, server = PacketRecorder(), PacketRecorder()
        for sport in range(10):
            client.on_send(packet(sport), float(sport))
        for sport in range(6):
            server.on_receive(packet(sport), float(sport) + 0.1)
        assert client_flow_failure_fraction(client, server) == pytest.approx(0.4)

    def test_window_restriction(self):
        client, server = PacketRecorder(), PacketRecorder()
        client.on_send(packet(1), 1.0)   # delivered
        client.on_send(packet(2), 10.0)  # lost, but outside the window
        server.on_receive(packet(1), 1.1)
        assert client_flow_failure_fraction(client, server, start=0.0, end=5.0) == 0.0
        assert client_flow_failure_fraction(client, server) == pytest.approx(0.5)

    def test_empty_client_returns_zero(self):
        assert client_flow_failure_fraction(PacketRecorder(), PacketRecorder()) == 0.0

    def test_flow_success_stats(self):
        client, server = PacketRecorder(), PacketRecorder()
        client.on_send(packet(1), 1.0)
        client.on_send(packet(2), 1.0)
        server.on_receive(packet(1), 1.1)
        stats = flow_success_stats(client, server)
        assert stats.flows_seen == 2
        assert stats.flows_succeeded == 1
        assert stats.success_fraction == 0.5


class TestMeters:
    def test_rate_estimator_steady_rate(self):
        est = RateEstimator(window_events=16)
        for i in range(100):
            est.observe(i * 0.01)
        assert est.rate(1.0) == pytest.approx(100.0, rel=0.05)

    def test_rate_estimator_needs_two_events(self):
        est = RateEstimator()
        assert est.rate() == 0.0
        est.observe(1.0)
        assert est.rate() == 0.0

    def test_rate_estimator_window_ages_out(self):
        est = RateEstimator(window_events=16, window_seconds=1.0)
        for i in range(16):
            est.observe(i * 0.01)
        assert est.rate(now=0.2) > 50
        assert est.rate(now=10.0) == 0.0

    def test_rate_estimator_validation(self):
        with pytest.raises(ValueError):
            RateEstimator(window_events=1)

    def test_ewma(self):
        ewma = Ewma(alpha=0.5)
        assert ewma.get(7.0) == 7.0
        ewma.update(10.0)
        ewma.update(0.0)
        assert ewma.get() == pytest.approx(5.0)

    def test_ewma_validation(self):
        with pytest.raises(ValueError):
            Ewma(alpha=0.0)

    def test_window_rate_meter(self):
        meter = WindowRateMeter(bin_seconds=1.0)
        for i in range(10):
            meter.observe(0.5)
        for i in range(20):
            meter.observe(1.5)
        series = dict(meter.series())
        assert series[0.0] == 10.0
        assert series[1.0] == 20.0
        assert meter.rate_in(0.0, 2.0) == pytest.approx(15.0)


class TestSeries:
    def test_reductions(self):
        series = TimeSeries()
        series.add(0.0, 1.0)
        series.add(1.0, 3.0)
        series.add(2.0, 5.0)
        assert series.last() == 5.0
        assert series.max() == 5.0
        assert series.mean_over(0.0, 2.0) == 2.0
        assert len(series) == 3

    def test_periodic_sampling(self):
        sim = Simulator()
        series = TimeSeries()
        values = iter(range(100))
        sample_periodically(sim, series, lambda: float(next(values)), interval=1.0, until=4.5)
        sim.run(until=10.0)
        assert series.times() == [1.0, 2.0, 3.0, 4.0]


class TestStats:
    def test_mean_and_stddev(self):
        assert mean([1, 2, 3]) == 2.0
        assert stddev([2, 2, 2]) == 0.0
        assert stddev([1]) == 0.0
        with pytest.raises(ValueError):
            mean([])

    def test_percentile_interpolation(self):
        data = [0, 10]
        assert percentile(data, 50) == 5.0
        assert percentile(data, 0) == 0
        assert percentile(data, 100) == 10

    def test_percentile_validation(self):
        with pytest.raises(ValueError):
            percentile([], 50)
        with pytest.raises(ValueError):
            percentile([1], 150)

    def test_cdf_points_monotone(self):
        points = cdf_points(list(range(100)), points=10)
        fractions = [f for _, f in points]
        assert fractions == sorted(fractions)
        assert points[-1][1] == 1.0

    def test_cdf_empty(self):
        assert cdf_points([]) == []

    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=1, max_size=100))
    def test_percentile_bounds_property(self, values):
        p0 = percentile(values, 0)
        p100 = percentile(values, 100)
        p50 = percentile(values, 50)
        assert p0 == min(values)
        assert p100 == max(values)
        assert p0 <= p50 <= p100
