"""Regenerate the golden-master fixtures (tests/golden/golden.json).

Usage::

    PYTHONPATH=src python tests/golden/regen.py

The fixtures pin the *observable behaviour* of the simulator on fixed
seeds: SHA-256 digests of the control-path trace JSONL, the fault-action
log JSONL and the alert timeline JSONL, plus the exact (bit-identical)
model results of each golden workload.  ``tests/test_golden_master.py``
recomputes all of them on every run and fails on any difference.

The point: engine/datapath optimizations must be *behaviour preserving*.
The checked-in fixtures were generated with the pre-optimization engine;
any change to event ordering, RNG draw sequence, trace content or model
arithmetic shows up as a digest mismatch.  Only regenerate after
convincing yourself (and saying so in the commit message) that the
behaviour change is intended — an unexplained digest change is a bug.
"""

from __future__ import annotations

import hashlib
import json
import os
import sys

GOLDEN_DIR = os.path.dirname(os.path.abspath(__file__))
GOLDEN_PATH = os.path.join(GOLDEN_DIR, "golden.json")


def sha256_text(text: str) -> str:
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


# ----------------------------------------------------------------------
# Workload 1 — pure engine: scripted schedule/cancel/daemon torture
# ----------------------------------------------------------------------
def engine_workload() -> dict:
    """A seeded, self-scheduling engine run that exercises timestamp
    ties, same-time daemon coalescing, cancellation (before/at/after the
    head), run-until resume and zero-delay self-scheduling.  The fired
    sequence is the engine's externally observable contract."""
    from repro.sim.engine import Simulator

    sim = Simulator(seed=99)
    rng = sim.rng.stream("golden")
    fired = []
    cancellable = []

    def work(tag):
        fired.append((round(sim.now, 9), tag))
        if tag < 400:
            # Quantized delays force plenty of exact timestamp ties.
            delay = round(rng.expovariate(20.0), 2)
            sim.schedule(delay, work, tag + 7)
        if tag % 11 == 0:
            event = sim.schedule(0.25, work, 1000 + tag)
            cancellable.append(event)
        if tag % 13 == 0 and cancellable:
            cancellable.pop(0).cancel()
        if tag % 17 == 0:
            sim.schedule(0.0, work, 2000 + tag)  # same-instant follow-up

    def tick():
        fired.append((round(sim.now, 9), "daemon"))
        sim.schedule(0.05, tick, daemon=True)

    for tag in range(12):
        sim.schedule(round(rng.random(), 2), work, tag)
    sim.schedule(0.05, tick, daemon=True)
    sim.run(until=1.0)
    sim.run(until=3.0)  # resume must be seamless
    for event in cancellable:
        event.cancel()
    final = sim.run(until=4.0)

    digest = sha256_text(json.dumps(fired, separators=(",", ":")))
    return {
        "fired_sha256": digest,
        "fired_count": len(fired),
        "final_time": final,
        "pending_after": sim.pending,
    }


# ----------------------------------------------------------------------
# Workload 2 — traced deployment run (trace JSONL must stay byte-stable)
# ----------------------------------------------------------------------
def traced_run(tmp_path: str) -> dict:
    """A small flood-under-Scotch run with the tracer on; digests the
    exported trace JSONL and pins the run's measured outcome."""
    from repro.metrics.failure import client_flow_failure_fraction
    from repro.obs import Observability, observed
    from repro.testbed.deployment import build_deployment
    from repro.traffic import NewFlowSource, SpoofedFlood

    obs = Observability(trace=True, metrics=False)
    with observed(obs):
        dep = build_deployment(seed=7)
        server_ip = dep.servers[0].ip
        NewFlowSource(dep.sim, dep.client, server_ip, rate_fps=50.0).start(
            at=0.5, stop_at=5.0)
        SpoofedFlood(dep.sim, dep.attacker, server_ip, rate_fps=800.0).start(
            at=1.0, stop_at=5.0)
        dep.sim.run(until=6.0)

    trace_path = os.path.join(tmp_path, "golden.trace.jsonl")
    records = obs.tracer.export_jsonl(trace_path)
    with open(trace_path, "rb") as handle:
        trace_digest = hashlib.sha256(handle.read()).hexdigest()
    os.unlink(trace_path)

    failure = client_flow_failure_fraction(
        dep.client.sent_tap, dep.servers[0].recv_tap, start=1.5, end=4.5)
    return {
        "trace_sha256": trace_digest,
        "trace_records": records,
        "model_results": {
            "client_failure": failure,
            "flows_started": len(dep.client.sent_tap.records),
            "server_flows_received": len(dep.servers[0].recv_tap.records),
            "edge_punted": dep.edge.datapath.punted,
            "edge_processed": dep.edge.datapath.processed,
            "attacker_sent": dep.attacker.sent_tap.total_packets,
            "final_time": dep.sim.now,
        },
    }


# ----------------------------------------------------------------------
# Workload 3 — mini chaos run (fault log + alert timeline JSONL)
# ----------------------------------------------------------------------
def mini_chaos() -> dict:
    """A compact chaos scenario: every JSONL the chaos/health stack
    emits must stay byte-identical, and the recovery numbers
    bit-identical.  Runs with ``postmortem=True`` — the collector is
    read-only, so the fault/alert digests are the same either way (the
    bit-identity contract) while the bundle digest pins the postmortem
    format itself."""
    from repro.faults import FaultPlan, run_chaos
    from repro.obs.postmortem import bundle_jsonl

    plan = FaultPlan()
    plan.channel_loss(2.0, "edge", duration=1.0, loss=0.08, duplicate=0.02,
                      jitter=0.5e-3, direction="both")
    plan.ofa_stall(3.0, "mv1_0", duration=0.5)
    plan.vswitch_crash(4.0, "mv0_0", down_for=1.0)
    plan.controller_outage(5.5, duration=0.5)

    report = run_chaos(seed=3, duration=9.0, client_rate=50.0,
                       attack_rate=600.0, plan=plan, health=True,
                       postmortem=True)
    return {
        "fault_log_sha256": sha256_text(report.fault_log_jsonl),
        "fault_actions": len(report.fault_log),
        "alert_timeline_sha256": sha256_text(report.alert_timeline_jsonl),
        "alert_transitions": len(report.alert_timeline),
        "postmortem_sha256": sha256_text(
            "".join(bundle_jsonl(b) for b in report.postmortems)),
        "postmortem_bundles": len(report.postmortems),
        "model_results": {
            "failure_during_faults": report.failure_during_faults,
            "failure_post_recovery": report.failure_post_recovery,
            "flows_started": report.flows_started,
            "faults_injected": report.faults_injected,
            "failures_detected": report.failures_detected,
            "recoveries_detected": report.recoveries_detected,
            "resyncs": report.resyncs,
            "reliable": report.reliable,
            "channel_drops": report.channel_drops,
            "channel_duplicates": report.channel_duplicates,
            "violations": len(report.violations),
        },
    }


def build_golden() -> dict:
    import tempfile

    with tempfile.TemporaryDirectory() as tmp:
        return {
            "_comment": "Golden-master fixtures. Regenerate ONLY for an "
                        "intended behaviour change: "
                        "PYTHONPATH=src python tests/golden/regen.py",
            "engine": engine_workload(),
            "traced_run": traced_run(tmp),
            "mini_chaos": mini_chaos(),
            "schemas": schema_versions(),
        }


def schema_versions() -> dict:
    """Pin every JSONL schema version: bumping one in
    repro.obs.schema without regenerating here is a test failure, so
    format changes stay deliberate."""
    from repro.obs.schema import SCHEMA_VERSIONS

    return dict(sorted(SCHEMA_VERSIONS.items()))


def main() -> int:
    golden = build_golden()
    with open(GOLDEN_PATH, "w") as handle:
        json.dump(golden, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {GOLDEN_PATH}")
    for section, data in golden.items():
        if isinstance(data, dict):
            for key, value in data.items():
                if key.endswith("sha256"):
                    print(f"  {section}.{key} = {value[:16]}…")
    return 0


if __name__ == "__main__":
    sys.exit(main())
