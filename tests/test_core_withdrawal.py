"""Tests for the §5.5 withdrawal sequence."""

import pytest

pytestmark = pytest.mark.slow

from repro.core.config import (
    PRIORITY_OVERLAY_PIN,
    PRIORITY_SCOTCH_DEFAULT,
    ScotchConfig,
)
from repro.metrics import client_flow_failure_fraction
from repro.net.flow import FlowKey, FlowSpec
from repro.testbed.deployment import build_deployment
from repro.traffic import NewFlowSource, SpoofedFlood


def run_attack_then_stop(dep, attack_rate=2000.0, stop_at=8.0, until=30.0,
                         client_rate=None, long_flow=False):
    sim = dep.sim
    server_ip = dep.servers[0].ip
    attack = SpoofedFlood(sim, dep.attacker, server_ip, rate_fps=attack_rate)
    attack.start(at=0.5, stop_at=stop_at)
    if client_rate:
        client = NewFlowSource(sim, dep.client, server_ip, rate_fps=client_rate)
        client.start(at=0.5, stop_at=until - 2.0)
    key = None
    if long_flow:
        # A continuing flow on the attacked port: still active at
        # withdrawal time, so it must be pinned to the overlay.
        key = FlowKey("10.99.0.50", server_ip, 6, 4444, 80)
        dep.attacker.start_flow(
            FlowSpec(key=key, start_time=2.0, size_packets=20_000, packet_size=500,
                     rate_pps=800.0, batch=10)
        )
    sim.run(until=until)
    return key


def default_rules(dep):
    return [e for e in dep.edge.datapath.table(0).entries()
            if e.priority == PRIORITY_SCOTCH_DEFAULT]


def pin_rules(dep):
    return [e for e in dep.edge.datapath.table(0).entries()
            if e.priority == PRIORITY_OVERLAY_PIN]


def test_withdrawal_removes_defaults_and_resumes_direct_packet_ins():
    dep = build_deployment(seed=21)
    run_attack_then_stop(dep, client_rate=80.0)
    assert dep.scotch.withdrawal.withdrawals == 1
    assert default_rules(dep) == []
    assert dep.scotch.overlay.active == set()
    # Direct Packet-Ins flow again after withdrawal.
    assert dep.edge.ofa.packet_ins_sent > 0


def test_no_withdrawal_while_attack_continues():
    dep = build_deployment(seed=21)
    run_attack_then_stop(dep, stop_at=18.0, until=19.0)
    assert dep.scotch.withdrawal.withdrawals == 0
    assert "edge" in dep.scotch.overlay.active


def test_dead_flows_are_not_pinned():
    """The flood's single-packet flows are long gone by withdrawal time;
    §5.5 pins only flows currently on the overlay."""
    dep = build_deployment(seed=21)
    run_attack_then_stop(dep, client_rate=80.0)
    assert dep.scotch.withdrawal.pins_installed <= 30


def test_active_overlay_flow_gets_pinned_and_survives():
    config = ScotchConfig(overlay_threshold=2,
                          elephant_packet_threshold=10_000_000)  # no migration
    dep = build_deployment(seed=22, config=config)
    key = run_attack_then_stop(dep, long_flow=True, client_rate=80.0)
    assert dep.scotch.withdrawal.withdrawals == 1
    assert dep.scotch.withdrawal.pins_installed >= 1
    # The pin keeps routing the flow to the overlay after the defaults
    # are gone: delivery continues to completion.
    record = dep.servers[0].recv_tap.flow(key)
    assert record.packets_received == 20_000


def test_pin_rules_idle_out():
    config = ScotchConfig(overlay_threshold=2, pin_idle_timeout=2.0,
                          elephant_packet_threshold=10_000_000)
    dep = build_deployment(seed=22, config=config)
    run_attack_then_stop(dep, long_flow=True, client_rate=80.0, until=40.0)
    dep.edge.expire_rules()
    assert pin_rules(dep) == []


def test_reactivation_after_withdrawal():
    dep = build_deployment(seed=23)
    sim = dep.sim
    server_ip = dep.servers[0].ip
    first = SpoofedFlood(sim, dep.attacker, server_ip, rate_fps=2000.0, rng_name="a1")
    second = SpoofedFlood(sim, dep.attacker, server_ip, rate_fps=2000.0, rng_name="a2")
    first.start(at=0.5, stop_at=6.0)
    second.start(at=22.0, stop_at=30.0)
    client = NewFlowSource(sim, dep.client, server_ip, rate_fps=80.0)
    client.start(at=0.5, stop_at=32.0)
    sim.run(until=34.0)
    app = dep.scotch
    assert app.activations == 2
    assert app.withdrawal.withdrawals >= 1
    # Protection held through the second wave too.
    failure = client_flow_failure_fraction(
        dep.client.sent_tap, dep.servers[0].recv_tap, start=24.0, end=30.0
    )
    assert failure < 0.05
