"""Tests for hosts and flow generation."""

import pytest

from repro.net.flow import FlowKey, FlowSpec
from repro.net.host import Host
from repro.net.packet import MplsHeader, Packet
from repro.net.topology import Network
from repro.sim.engine import Simulator
from repro.switch.actions import Output
from repro.switch.match import Match
from repro.switch.switch import PhysicalSwitch


def build_pair():
    sim = Simulator()
    net = Network(sim)
    a = net.add(Host(sim, "a", "10.0.0.1"))
    b = net.add(Host(sim, "b", "10.0.0.2"))
    net.link("a", "b", rate_bps=1e9, delay=1e-6)
    return sim, a, b


def test_send_records_in_sent_tap():
    sim, a, b = build_pair()
    a.send(Packet("10.0.0.1", "10.0.0.2", src_port=1, dst_port=2))
    sim.run()
    assert a.sent_tap.total_packets == 0  # sent tap records sends, not receives
    assert len(a.sent_tap.sent_flow_keys()) == 1
    assert b.recv_tap.total_packets == 1


def test_receive_strips_encap():
    sim, a, b = build_pair()
    packet = Packet("10.0.0.1", "10.0.0.2")
    packet.push(MplsHeader(5))
    a.send(packet)
    sim.run()
    assert packet.encap == []


def test_on_receive_callback():
    sim, a, b = build_pair()
    got = []
    b.on_receive = got.append
    a.send(Packet("10.0.0.1", "10.0.0.2"))
    sim.run()
    assert len(got) == 1


def test_single_packet_flow():
    sim, a, b = build_pair()
    key = FlowKey("10.0.0.1", "10.0.0.2", 6, 5, 6)
    a.start_flow(FlowSpec(key=key, start_time=1.0))
    sim.run()
    record = b.recv_tap.flow(key)
    assert record.packets_received == 1


def test_multi_packet_flow_paced_at_rate():
    sim, a, b = build_pair()
    key = FlowKey("10.0.0.1", "10.0.0.2", 6, 5, 6)
    a.start_flow(FlowSpec(key=key, start_time=0.0, size_packets=5, rate_pps=10.0))
    sim.run()
    record = b.recv_tap.flow(key)
    assert record.packets_received == 5
    # 4 follow-up packets at 10 pps -> last around t=0.4.
    assert record.last_received_at == pytest.approx(0.4, abs=0.01)


def test_batched_flow_delivers_full_size():
    sim, a, b = build_pair()
    key = FlowKey("10.0.0.1", "10.0.0.2", 6, 5, 6)
    a.start_flow(FlowSpec(key=key, start_time=0.0, size_packets=103, rate_pps=1000.0, batch=10))
    sim.run()
    assert b.recv_tap.flow(key).packets_received == 103


def test_first_packet_is_syn_rest_data():
    sim, a, b = build_pair()
    flags = []
    b.on_receive = lambda p: flags.append(p.tcp_flag)
    key = FlowKey("10.0.0.1", "10.0.0.2", 6, 5, 6)
    a.start_flow(FlowSpec(key=key, start_time=0.0, size_packets=3, rate_pps=100.0))
    sim.run()
    assert flags[0] == "SYN"
    assert all(f == "DATA" for f in flags[1:])


def test_nic_raises_without_link():
    sim = Simulator()
    host = Host(sim, "lonely", "10.0.0.9")
    with pytest.raises(RuntimeError):
        host.nic


def test_flow_through_switch_with_static_rule():
    sim = Simulator()
    net = Network(sim)
    a = net.add(Host(sim, "a", "10.0.0.1"))
    b = net.add(Host(sim, "b", "10.0.0.2"))
    sw = net.add(PhysicalSwitch(sim, "sw"))
    net.link("a", "sw")
    net.link("b", "sw")
    sw.install_static(Match(dst_ip="10.0.0.2"), priority=10,
                      actions=[Output(net.port_between("sw", "b"))])
    key = FlowKey("10.0.0.1", "10.0.0.2", 6, 1, 2)
    a.start_flow(FlowSpec(key=key, start_time=0.0, size_packets=4, rate_pps=100.0))
    sim.run()
    assert b.recv_tap.flow(key).packets_received == 4
