"""Tests for the topology builders, including Scotch on a leaf-spine."""

import networkx as nx
import pytest

from repro.controller.controller import OpenFlowController
from repro.core.app import ScotchApp
from repro.core.overlay import ScotchOverlay
from repro.metrics import client_flow_failure_fraction
from repro.net.builders import fat_tree, leaf_spine, linear
from repro.switch.switch import VSwitch
from repro.traffic import NewFlowSource, SpoofedFlood


class TestLinear:
    def test_shape(self):
        topo = linear(4, hosts_per_switch=2)
        assert len(topo.switches) == 4
        assert len(topo.hosts) == 8
        assert topo.network.shortest_path("s0", "s3") == ["s0", "s1", "s2", "s3"]

    def test_validation(self):
        with pytest.raises(ValueError):
            linear(0)


class TestLeafSpine:
    def test_shape(self):
        topo = leaf_spine(leaves=4, spines=2, hosts_per_leaf=2)
        assert len(topo.layers["leaf"]) == 4
        assert len(topo.layers["spine"]) == 2
        assert len(topo.hosts) == 8
        # Full bipartite leaf<->spine connectivity.
        for leaf in topo.layers["leaf"]:
            for spine in topo.layers["spine"]:
                assert topo.network.graph.has_edge(leaf, spine)

    def test_two_hop_cross_rack_paths(self):
        topo = leaf_spine(leaves=3, spines=2)
        path = topo.network.shortest_path("leaf0", "leaf2")
        assert len(path) == 3  # leaf - spine - leaf

    def test_validation(self):
        with pytest.raises(ValueError):
            leaf_spine(leaves=0)


class TestFatTree:
    def test_k4_inventory(self):
        topo = fat_tree(k=4)
        assert len(topo.layers["core"]) == 4
        assert len(topo.layers["agg"]) == 8
        assert len(topo.layers["edge"]) == 8
        assert len(topo.hosts) == 8

    def test_all_pairs_connected(self):
        topo = fat_tree(k=4)
        assert nx.is_connected(topo.network.graph)
        path = topo.network.shortest_path(topo.hosts[0].name, topo.hosts[-1].name)
        # host - edge - agg - core - agg - edge - host
        assert len(path) == 7

    def test_odd_k_rejected(self):
        with pytest.raises(ValueError):
            fat_tree(k=3)


def test_scotch_on_builder_leaf_spine():
    """The overlay machinery composes with a builder topology: protect a
    leaf-spine fabric end to end."""
    topo = leaf_spine(leaves=3, spines=2, hosts_per_leaf=1, seed=9)
    sim, net = topo.sim, topo.network
    # Two mesh vSwitches on different leaves.
    overlay = ScotchOverlay(net)
    for index in range(2):
        net.add(VSwitch(sim, f"mv{index}"))
        net.link(f"mv{index}", f"leaf{index}", 1e9)
        overlay.add_mesh_vswitch(f"mv{index}")
    for host in topo.hosts:
        overlay.set_host_delivery(host.name, None, "mv0")
    for switch in topo.switches:
        overlay.register_switch(switch.name)

    controller = OpenFlowController(sim, net)
    for name, node in net.nodes.items():
        if hasattr(node, "ofa"):
            controller.register_switch(node)
    app = controller.add_app(ScotchApp(overlay))

    victim_ip = topo.hosts[-1].ip  # host on leaf2
    attacker, client = topo.hosts[0], topo.hosts[1]
    SpoofedFlood(sim, attacker, victim_ip, rate_fps=2000.0).start(at=1.0, stop_at=12.0)
    source = NewFlowSource(sim, client, victim_ip, rate_fps=60.0)
    source.start(at=0.5, stop_at=12.0)
    sim.run(until=14.0)

    assert app.activations >= 1
    failure = client_flow_failure_fraction(
        client.sent_tap, topo.hosts[-1].recv_tap, start=4.0, end=11.0
    )
    assert failure < 0.05
