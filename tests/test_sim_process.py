"""Tests for generator-based processes."""

from repro.sim.engine import Simulator
from repro.sim.process import Process


def test_process_resumes_after_yielded_delay():
    sim = Simulator()
    times = []

    def proc():
        times.append(sim.now)
        yield 1.0
        times.append(sim.now)
        yield 2.5
        times.append(sim.now)

    Process(sim, proc())
    sim.run()
    assert times == [0.0, 1.0, 3.5]


def test_process_start_delay():
    sim = Simulator()
    times = []

    def proc():
        times.append(sim.now)
        yield 1.0
        times.append(sim.now)

    Process(sim, proc(), start_delay=2.0)
    sim.run()
    assert times == [2.0, 3.0]


def test_process_terminates_when_generator_returns():
    sim = Simulator()

    def proc():
        yield 1.0

    process = Process(sim, proc())
    sim.run()
    assert process.alive is False


def test_stop_prevents_further_resumes():
    sim = Simulator()
    ticks = []

    def proc():
        while True:
            ticks.append(sim.now)
            yield 1.0

    process = Process(sim, proc())
    sim.schedule(2.5, process.stop)
    sim.run(until=10.0)
    assert ticks == [0.0, 1.0, 2.0]
    assert process.alive is False


def test_two_processes_interleave():
    sim = Simulator()
    log = []

    def proc(name, gap):
        for _ in range(3):
            log.append((round(sim.now, 6), name))
            yield gap

    Process(sim, proc("a", 1.0))
    Process(sim, proc("b", 1.5))
    sim.run()
    assert log == [
        (0.0, "a"),
        (0.0, "b"),
        (1.0, "a"),
        (1.5, "b"),
        (2.0, "a"),
        (3.0, "b"),
    ]
