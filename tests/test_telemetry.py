"""Unit tests for the sampled-telemetry pipeline: the per-vSwitch
packet sampler, the flow estimator, and the mode-selectable
SamplingStatsService."""

import math

import pytest

from repro.controller.base_app import BaseApp
from repro.controller.controller import OpenFlowController
from repro.core.config import VSWITCH_FLOW_TABLE, ScotchConfig
from repro.core.migration import OVERLAY_COOKIE
from repro.net.flow import FlowKey
from repro.net.packet import Packet
from repro.net.topology import Network
from repro.openflow.messages import SampleRecord, SampleReport
from repro.sim.engine import Simulator
from repro.switch.profiles import OPEN_VSWITCH
from repro.switch.switch import VSwitch
from repro.telemetry import FlowEstimator, PacketSampler, SamplingStatsService


class StatsRecorder(BaseApp):
    def __init__(self):
        super().__init__()
        self.replies = []
        self.sample_reports = []

    def stats_reply(self, dpid, message):
        self.replies.append((dpid, message))

    def sample_report(self, dpid, message):
        self.sample_reports.append((dpid, message))


def build(seed=0):
    sim = Simulator(seed=seed)
    net = Network(sim)
    controller = OpenFlowController(sim, net)
    sw = net.add(VSwitch(sim, "s0", OPEN_VSWITCH))
    controller.register_switch(sw)
    app = StatsRecorder()
    controller.add_app(app)
    return sim, net, controller, sw, app


def packet(port=1000, size=500, count=1):
    return Packet("10.0.0.1", "10.0.1.1", 6, port, 80, size=size, count=count)


# ----------------------------------------------------------------------
# Sampler
# ----------------------------------------------------------------------
def test_sampler_validates_parameters():
    sim, net, controller, sw, app = build()
    with pytest.raises(ValueError):
        PacketSampler(sim, sw, period=0, export_interval=0.25)
    with pytest.raises(ValueError):
        PacketSampler(sim, sw, period=10, export_interval=0.0)


def test_sampler_rate_is_exactly_one_in_n():
    sim, net, controller, sw, app = build()
    sampler = PacketSampler(sim, sw, period=10, export_interval=0.25)
    for _ in range(1000):
        sampler.observe(packet())
    assert sampler.packets_seen == 1000
    # Systematic sampling: exactly floor or ceil of N/period, phase-
    # dependent — never a binomial spread.
    assert sampler.samples_taken in (100, 101)


def test_sampler_period_one_samples_everything():
    sim, net, controller, sw, app = build()
    sampler = PacketSampler(sim, sw, period=1, export_interval=0.25)
    for _ in range(25):
        sampler.observe(packet(count=1))
    sampler.observe(packet(count=5))
    assert sampler.samples_taken == 30


def test_sampler_trains_equivalent_to_singles():
    # Two samplers over the same seed + switch name share the RNG phase;
    # feeding one packet trains and the other the equivalent singles
    # must produce identical sample counts (exact count-based scheme).
    results = []
    for trains in (False, True):
        sim, net, controller, sw, app = build(seed=7)
        sampler = PacketSampler(sim, sw, period=10, export_interval=0.25)
        if trains:
            for _ in range(40):
                sampler.observe(packet(count=25))
        else:
            for _ in range(1000):
                sampler.observe(packet(count=1))
        results.append((sampler.packets_seen, sampler.samples_taken))
    assert results[0] == results[1]
    assert results[0][0] == 1000


def test_sampler_deterministic_per_seed():
    counts = []
    for _ in range(2):
        sim, net, controller, sw, app = build(seed=11)
        sampler = PacketSampler(sim, sw, period=10, export_interval=0.25)
        for index in range(500):
            sampler.observe(packet(port=1000 + index % 7))
        counts.append((sampler.samples_taken, sampler.flush().records))
    assert counts[0][0] == counts[1][0]
    assert [
        (r.key, r.samples, r.sampled_bytes) for r in counts[0][1]
    ] == [(r.key, r.samples, r.sampled_bytes) for r in counts[1][1]]


def test_sampler_flush_exports_empty_liveness_report():
    sim, net, controller, sw, app = build()
    sampler = PacketSampler(sim, sw, period=10, export_interval=0.25)
    sampler.start()
    sim.run(until=0.6)
    # Two ticks, no traffic: two empty reports still reached the
    # controller (the estimator's liveness heartbeat).
    assert sampler.reports_sent == 2
    assert len(app.sample_reports) == 2
    for dpid, report in app.sample_reports:
        assert dpid == "s0"
        assert report.records == []
        assert report.period == 10
    assert controller.sample_reports_received == 2


def test_sampler_stop_cancels_export_tick():
    sim, net, controller, sw, app = build()
    sampler = PacketSampler(sim, sw, period=10, export_interval=0.25)
    sampler.start()
    sim.run(until=0.3)
    sampler.stop()
    sim.run(until=1.0)
    assert sampler.reports_sent == 1


def test_sampler_aggregates_per_flow_bytes():
    sim, net, controller, sw, app = build()
    sampler = PacketSampler(sim, sw, period=1, export_interval=0.25)
    for _ in range(3):
        sampler.observe(packet(port=1000, size=200))
    sampler.observe(packet(port=2000, size=700))
    report = sampler.flush()
    by_key = {r.key: r for r in report.records}
    k1 = packet(port=1000).flow_key
    k2 = packet(port=2000).flow_key
    assert by_key[k1].samples == 3
    assert by_key[k1].sampled_bytes == 600
    assert by_key[k2].samples == 1
    assert by_key[k2].sampled_bytes == 700


# ----------------------------------------------------------------------
# Estimator
# ----------------------------------------------------------------------
def report_for(key, samples, sampled_bytes, period=10, t0=0.0, t1=0.25):
    return SampleReport(
        datapath_id="s0", period=period,
        records=[SampleRecord(key=key, samples=samples,
                              sampled_bytes=sampled_bytes)],
        window_start=t0, window_end=t1)


def test_estimator_scaling_and_confidence():
    est = FlowEstimator()
    key = FlowKey("10.0.0.1", "10.0.1.1", 6, 1000, 80)
    updated = est.ingest("s0", report_for(key, samples=6, sampled_bytes=3000), now=0.25)
    assert len(updated) == 1
    estimate = updated[0]
    assert estimate.est_packets == 60
    assert estimate.est_bytes == 30000
    # Duffield variance for 1-in-N systematic sampling.
    assert estimate.ci95_packets == pytest.approx(1.96 * math.sqrt(6 * 10 * 9))
    assert 0 < estimate.relative_error < 1
    # A second window accumulates.
    est.ingest("s0", report_for(key, samples=4, sampled_bytes=2000,
                                t0=0.25, t1=0.5), now=0.5)
    assert est.get("s0", key).est_packets == 100
    assert est.get("s0", key).first_seen == 0.0
    assert est.get("s0", key).last_seen == 0.5


def test_estimator_tracks_dpids_independently_and_prunes():
    est = FlowEstimator()
    key = FlowKey("10.0.0.1", "10.0.1.1", 6, 1000, 80)
    est.ingest("s0", report_for(key, 2, 1000), now=0.25)
    est.ingest("s1", report_for(key, 5, 2500), now=1.0)
    assert est.get("s0", key).est_packets == 20
    assert est.get("s1", key).est_packets == 50
    assert est.flow_count() == 2
    dropped = est.prune(older_than=0.5)
    assert dropped == 1
    assert est.get("s0", key) is None
    assert est.get("s1", key) is not None


# ----------------------------------------------------------------------
# Service modes
# ----------------------------------------------------------------------
def test_config_validates_telemetry_knobs():
    with pytest.raises(ValueError):
        ScotchConfig(stats_mode="bogus")
    with pytest.raises(ValueError):
        ScotchConfig(sampling_period=0)
    with pytest.raises(ValueError):
        ScotchConfig(sample_export_interval=0.0)
    with pytest.raises(ValueError):
        ScotchConfig(hybrid_poll_multiplier=0.5)


def test_poll_mode_is_a_plain_stats_poller():
    sim, net, controller, sw, app = build()
    service = SamplingStatsService(
        controller, net, targets=lambda: ["s0"],
        config=ScotchConfig(stats_mode="poll"))
    assert service.poller is not None
    assert service.poller.interval == ScotchConfig().stats_interval
    assert service.poller.table_id == VSWITCH_FLOW_TABLE
    assert not service.sampling
    service.start()
    sim.run(until=1.5)
    assert service.polls_sent == 1
    assert sw.datapath.sampler is None


def test_off_mode_measures_nothing():
    sim, net, controller, sw, app = build()
    service = SamplingStatsService(
        controller, net, targets=lambda: ["s0"],
        config=ScotchConfig(stats_mode="off"))
    service.start()
    sim.run(until=2.0)
    assert service.poller is None
    assert service.polls_sent == 0
    assert service.samplers == {}
    assert sw.datapath.sampler is None
    assert app.replies == []


def test_hybrid_mode_slows_the_safety_net_poll():
    sim, net, controller, sw, app = build()
    config = ScotchConfig(stats_mode="hybrid", hybrid_poll_multiplier=5.0)
    service = SamplingStatsService(
        controller, net, targets=lambda: ["s0"], config=config)
    assert service.sampling
    assert service.poller.interval == config.stats_interval * 5.0
    service.start()
    assert sw.datapath.sampler is service.samplers["s0"]


def test_sample_mode_synthesizes_migrator_shaped_replies():
    sim, net, controller, sw, app = build()
    config = ScotchConfig(stats_mode="sample", sampling_period=10)
    service = SamplingStatsService(
        controller, net, targets=lambda: ["s0"], config=config)
    service.start()
    assert service.poller is None
    key = FlowKey("10.0.0.1", "10.0.1.1", 6, 1000, 80)
    service.handle_sample_report("s0", report_for(key, samples=30,
                                                  sampled_bytes=15000))
    assert service.reports_received == 1
    assert len(app.replies) == 1
    dpid, reply = app.replies[0]
    assert dpid == "s0"
    entry = reply.entries[0]
    # The exact shape the §5.3 migrator filters on.
    assert entry.cookie == OVERLAY_COOKIE
    assert entry.table_id == VSWITCH_FLOW_TABLE
    assert entry.match.is_exact_five_tuple
    assert FlowKey(*entry.match.five_tuple_key()) == key
    assert entry.packets == 300
    assert entry.bytes == 150000
    # An empty liveness report updates staleness but emits no reply.
    service.handle_sample_report("s0", SampleReport(
        datapath_id="s0", period=10, records=[]))
    assert len(app.replies) == 1
    assert service.reports_received == 2


def test_sample_mode_end_to_end_through_the_channel():
    sim, net, controller, sw, app = build()
    config = ScotchConfig(stats_mode="sample", sampling_period=1,
                          sample_export_interval=0.25)
    service = SamplingStatsService(
        controller, net, targets=lambda: ["s0"], config=config)

    # The ScotchApp role: forward arriving sample exports to the service.
    class Forwarder(BaseApp):
        def sample_report(self, dpid, message):
            service.handle_sample_report(dpid, message)

    controller.add_app(Forwarder())
    service.start()
    sampler = service.samplers["s0"]
    # Traffic through the datapath hook -> timer export -> controller
    # dispatch -> synthetic reply, all inside the simulation.
    sim.schedule_at(0.1, sampler.observe, packet(port=1000, size=400))
    sim.schedule_at(0.15, sampler.observe, packet(port=1000, size=400))
    sim.run(until=0.6)
    assert controller.sample_reports_received >= 1
    assert len(app.replies) >= 1
    entry = app.replies[0][1].entries[0]
    assert entry.packets == 2  # period 1: estimate == truth
    assert entry.bytes == 800


def test_dynamic_targets_detach_and_reattach_samplers():
    sim, net, controller, sw, app = build()
    targets = ["s0"]
    config = ScotchConfig(stats_mode="sample", sample_export_interval=0.25)
    service = SamplingStatsService(
        controller, net, targets=lambda: list(targets), config=config)
    service.start()
    sampler = service.samplers["s0"]
    assert sw.datapath.sampler is sampler
    targets.clear()
    sim.run(until=0.6)
    assert sw.datapath.sampler is None
    assert not sampler._running
    targets.append("s0")
    sim.run(until=1.1)
    assert sw.datapath.sampler is service.samplers["s0"]
    assert service.samplers["s0"]._running


def test_service_stop_detaches_everything():
    sim, net, controller, sw, app = build()
    config = ScotchConfig(stats_mode="sample")
    service = SamplingStatsService(
        controller, net, targets=lambda: ["s0"], config=config)
    service.start()
    assert sw.datapath.sampler is not None
    service.stop()
    assert sw.datapath.sampler is None
    reports_before = controller.sample_reports_received
    sim.run(until=2.0)
    assert controller.sample_reports_received == reports_before
