"""End-to-end control-path tracing: punt -> Packet-In -> handling ->
install, through real testbeds, plus the inspect/manifest consumers."""

import json

import pytest

from repro.obs import Observability, observed
from repro.obs import path as obs_path
from repro.obs.inspect import stage_rows, summarize_trace
from repro.obs.manifest import build_manifest, read_manifest, write_manifest
from repro.testbed.single_switch import SERVER_IP, build_single_switch
from repro.traffic import NewFlowSource


def traced_single_switch_run(tmp_path):
    obs = Observability(trace=True, metrics=True)
    with observed(obs):
        bed = build_single_switch(seed=5)
        NewFlowSource(bed.sim, bed.client, SERVER_IP, rate_fps=40.0).start(
            at=0.2, stop_at=1.2)
        bed.sim.run(until=2.0)
    path = tmp_path / "run.trace.jsonl"
    obs.tracer.export_jsonl(str(path))
    return obs, bed, path


def test_stage_spans_cover_the_control_path(tmp_path):
    obs, bed, _ = traced_single_switch_run(tmp_path)
    records = obs.tracer.records(include_open=False)
    names = {r["name"] for r in records}
    assert {obs_path.SPAN_PACKET_IN, obs_path.SPAN_OFA_QUEUE,
            obs_path.SPAN_CHANNEL, obs_path.SPAN_HANDLE,
            obs_path.SPAN_INSTALL} <= names
    journeys = [r for r in records if r["name"] == obs_path.SPAN_PACKET_IN]
    assert journeys
    for journey in journeys:
        args = journey["args"]
        assert args["switch"] == "sw1"
        assert "route" in args
        assert "handle_s" in args
        assert journey["t1"] >= journey["t0"]
    # The reactive app decides inline during dispatch.
    assert {j["args"]["route"] for j in journeys} <= {"inline", "lost"}
    # One Packet-In sent per completed journey that wasn't queue-dropped.
    sent = sum(1 for j in journeys if j["args"]["route"] != "lost")
    assert sent == bed.switch.ofa.packet_ins_sent


def test_metrics_instruments_populate(tmp_path):
    obs, bed, _ = traced_single_switch_run(tmp_path)
    metrics = obs.metrics
    assert metrics.counters["controller.packet_ins"].value > 0
    assert metrics.counters["ofa.sw1.packet_ins"].value > 0
    assert metrics.counters["ofa.sw1.installs"].value > 0
    assert "ofa.sw1.packet_in_queue" in metrics.gauges
    assert "switch.sw1.table0_entries" in metrics.gauges
    assert metrics.gauges["switch.sw1.table0_entries"].read() > 0
    latency = metrics.histograms["path.packet_in_latency_s"]
    assert latency.count > 0
    assert latency.quantile(0.5) > 0.0


def test_inspect_summarizes_stages(tmp_path):
    _, _, path = traced_single_switch_run(tmp_path)
    summary = summarize_trace(str(path))
    assert summary["records"] == summary["spans"] + summary["instants"]
    stages = summary["stages"]
    for name in (obs_path.SPAN_PACKET_IN, obs_path.SPAN_OFA_QUEUE,
                 obs_path.SPAN_CHANNEL, obs_path.SPAN_HANDLE):
        assert stages[name]["count"] > 0
        assert stages[name]["p50_ms"] <= stages[name]["p99_ms"] <= stages[name]["max_ms"]
    pktin = summary["packet_in"]
    assert pktin["count"] == stages[obs_path.SPAN_PACKET_IN]["count"]
    assert sum(pktin["routes"].values()) == pktin["count"]
    rows = stage_rows(summary)
    assert [row[0] for row in rows] == sorted(stages)


@pytest.mark.slow
def test_overlay_relay_recorded_at_deployment_scale(tmp_path):
    from repro.testbed.deployment import build_deployment
    from repro.traffic import SpoofedFlood

    obs = Observability(trace=True, metrics=True)
    with observed(obs):
        dep = build_deployment(seed=3, racks=2, mesh_per_rack=1)
        server_ip = dep.servers[0].ip
        NewFlowSource(dep.sim, dep.client, server_ip, rate_fps=100.0).start(
            at=0.5, stop_at=5.0)
        SpoofedFlood(dep.sim, dep.attacker, server_ip, rate_fps=1500.0).start(
            at=1.0, stop_at=5.0)
        dep.sim.run(until=7.0)
    records = obs.tracer.records(include_open=False)
    relayed = [r for r in records
               if r["name"] == obs_path.SPAN_PACKET_IN and "relay" in r["args"]]
    assert relayed, "flood should push Packet-Ins through the overlay relay"
    for journey in relayed:
        assert journey["args"]["relay"] in dep.scotch.overlay.mesh
        # Attribution re-stamped the true origin switch, not the vSwitch.
        assert journey["args"]["switch"] not in dep.scotch.overlay.mesh
    # Activation instants landed on the monitor track.
    instants = [r for r in records if r["type"] == "instant"]
    assert any(r["name"] == "overlay.activate" for r in instants)
    # Per-vSwitch relay counters and per-tunnel counters populated.
    relay_counters = {n: c.value for n, c in obs.metrics.counters.items()
                      if n.startswith("overlay.relay.")}
    assert sum(relay_counters.values()) == len(relayed)
    assert any(n.startswith("overlay.tunnel.") for n in obs.metrics.counters)


def test_manifest_roundtrip(tmp_path):
    from repro.core.config import ScotchConfig
    from repro.switch.profiles import PICA8_PRONTO_3780

    manifest = build_manifest(
        command=["scotch-repro", "fig", "3", "--quick"],
        seed=42,
        config=ScotchConfig(),
        profiles=[PICA8_PRONTO_3780],
        trace_path="t.jsonl",
        chrome_trace_path="t.chrome.json",
        metrics_path="m.jsonl",
        extra={"note": "test"},
    )
    path = str(tmp_path / "manifest.json")
    write_manifest(path, manifest)
    loaded = read_manifest(path)
    assert loaded == json.loads(json.dumps(manifest))  # JSON-clean
    assert loaded["manifest_version"] == 1
    assert loaded["seed"] == 42
    assert loaded["outputs"]["trace_jsonl"] == "t.jsonl"
    assert loaded["profiles"][0]["name"] == PICA8_PRONTO_3780.name
    assert loaded["config"]["vswitches_per_switch"] == (
        ScotchConfig().vswitches_per_switch)
