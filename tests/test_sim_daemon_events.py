"""Tests for daemon (housekeeping) events."""

import pytest

from repro.sim.engine import Simulator


def test_daemon_events_do_not_keep_run_alive():
    sim = Simulator()
    ticks = []

    def housekeeping():
        ticks.append(sim.now)
        sim.schedule(1.0, housekeeping, daemon=True)

    sim.schedule(1.0, housekeeping, daemon=True)
    sim.schedule(2.5, lambda: None)  # the only foreground work
    final = sim.run()
    # Runs until the foreground event fires, then stops — despite the
    # self-rescheduling daemon.
    assert final == pytest.approx(2.5)
    assert ticks == [1.0, 2.0]


def test_daemon_events_fire_while_foreground_exists():
    sim = Simulator()
    fired = []
    sim.schedule(0.5, fired.append, "daemon", daemon=True)
    sim.schedule(1.0, fired.append, "fg")
    sim.run()
    assert fired == ["daemon", "fg"]


def test_run_until_still_drives_daemons():
    sim = Simulator()
    ticks = []

    def housekeeping():
        ticks.append(sim.now)
        sim.schedule(1.0, housekeeping, daemon=True)

    sim.schedule(1.0, housekeeping, daemon=True)
    sim.run(until=4.5)
    assert ticks == [1.0, 2.0, 3.0, 4.0]


def test_pure_daemon_simulation_ends_immediately():
    sim = Simulator()
    sim.schedule(1.0, lambda: None, daemon=True)
    assert sim.run() == 0.0


def test_cancelled_foreground_eventually_releases_run():
    sim = Simulator()

    def housekeeping():
        sim.schedule(1.0, housekeeping, daemon=True)

    sim.schedule(1.0, housekeeping, daemon=True)
    event = sim.schedule(3.0, lambda: None)
    event.cancel()
    final = sim.run()
    # The cancelled event is discarded when its time comes; daemons then
    # stop holding the loop (they never did) and run() returns.
    assert final <= 3.0


def test_switch_simulation_terminates_without_horizon():
    """Regression for the hang this feature fixes: a bare sim.run() on a
    topology with a switch (whose expiry sweep self-reschedules) must
    terminate once traffic is done."""
    from repro.net.flow import FlowKey, FlowSpec
    from repro.net.host import Host
    from repro.net.topology import Network
    from repro.switch.actions import Output
    from repro.switch.match import Match
    from repro.switch.profiles import IDEAL_SWITCH
    from repro.switch.switch import PhysicalSwitch

    sim = Simulator()
    net = Network(sim)
    sw = net.add(PhysicalSwitch(sim, "sw", IDEAL_SWITCH))
    a = net.add(Host(sim, "a", "10.0.0.1"))
    b = net.add(Host(sim, "b", "10.0.0.2"))
    net.link("a", "sw")
    net.link("b", "sw")
    key = FlowKey("10.0.0.1", "10.0.0.2", 6, 1, 2)
    sw.install_static(Match.for_flow(key), 100, [Output(net.port_between("sw", "b"))])
    a.start_flow(FlowSpec(key=key, start_time=0.1, size_packets=5, rate_pps=100.0))
    final = sim.run()  # must return, not spin on sweeps
    assert final < 10.0
    assert b.recv_tap.flow(key).packets_received == 5
