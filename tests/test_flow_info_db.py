"""Unit tests for the Flow Info Database (paper §5.2)."""

from repro.controller.flow_info_db import (
    ROUTE_DROPPED,
    ROUTE_OVERLAY,
    ROUTE_PHYSICAL,
    FlowInfoDatabase,
)
from repro.net.flow import FlowKey


def key(port: int) -> FlowKey:
    return FlowKey("10.0.0.1", "10.0.1.1", 6, port, 80)


def test_record_inserts_once_and_returns_existing():
    db = FlowInfoDatabase()
    info = db.record(key(1), "edge", 3, now=1.0, entry_vswitch="mv0")
    again = db.record(key(1), "other", 9, now=2.0)
    assert again is info
    assert info.first_hop_switch == "edge"
    assert info.ingress_port == 3
    assert info.first_seen == 1.0
    assert info.entry_vswitch == "mv0"
    assert len(db) == 1
    assert key(1) in db
    assert key(2) not in db


def test_get_missing_returns_none():
    db = FlowInfoDatabase()
    assert db.get(key(1)) is None


def test_set_route_overlay_to_physical_stamps_migrated_at():
    db = FlowInfoDatabase()
    db.record(key(1), "edge", 1, now=0.0)
    db.set_route(key(1), ROUTE_OVERLAY)
    assert db.get(key(1)).migrated_at is None
    db.set_route(key(1), ROUTE_PHYSICAL, now=4.5)
    info = db.get(key(1))
    assert info.route == ROUTE_PHYSICAL
    assert info.migrated_at == 4.5


def test_set_route_physical_without_overlay_does_not_stamp():
    db = FlowInfoDatabase()
    db.record(key(1), "edge", 1, now=0.0)
    db.set_route(key(1), ROUTE_PHYSICAL, now=2.0)
    assert db.get(key(1)).migrated_at is None


def test_set_route_without_now_keeps_migrated_at_unset():
    db = FlowInfoDatabase()
    db.record(key(1), "edge", 1, now=0.0)
    db.set_route(key(1), ROUTE_OVERLAY)
    db.set_route(key(1), ROUTE_PHYSICAL)
    assert db.get(key(1)).migrated_at is None


def test_flows_on_and_overlay_flows_via():
    db = FlowInfoDatabase()
    db.record(key(1), "edge", 1, now=0.0)
    db.record(key(2), "edge", 1, now=0.0)
    db.record(key(3), "tor0", 1, now=0.0)
    db.set_route(key(1), ROUTE_OVERLAY)
    db.set_route(key(3), ROUTE_OVERLAY)
    db.set_route(key(2), ROUTE_DROPPED)
    assert {i.key for i in db.flows_on(ROUTE_OVERLAY)} == {key(1), key(3)}
    assert [i.key for i in db.overlay_flows_via("edge")] == [key(1)]
    assert [i.key for i in db.overlay_flows_via("tor0")] == [key(3)]
    assert db.overlay_flows_via("spine") == []


def test_counts_tallies_per_route():
    db = FlowInfoDatabase()
    db.record(key(1), "edge", 1, now=0.0)
    db.record(key(2), "edge", 1, now=0.0)
    db.set_route(key(2), ROUTE_OVERLAY)
    assert db.counts() == {"pending": 1, "overlay": 1}


def test_forget_is_idempotent():
    db = FlowInfoDatabase()
    db.record(key(1), "edge", 1, now=0.0)
    db.forget(key(1))
    db.forget(key(1))
    assert len(db) == 0
    assert db.counts() == {}
