"""Integration tests: the full Scotch lifecycle on the deployment testbed.

These are the behavioural guarantees the paper claims, exercised
end-to-end: protection under flood, ingress-port isolation, elephant
migration, policy consistency, withdrawal, and vSwitch failover.
"""

import pytest

pytestmark = pytest.mark.slow

from repro.core.config import PRIORITY_SCOTCH_DEFAULT, ScotchConfig
from repro.metrics import client_flow_failure_fraction
from repro.net.flow import FlowKey, FlowSpec
from repro.testbed.deployment import build_deployment
from repro.traffic import NewFlowSource, SpoofedFlood


def test_normal_operation_without_attack():
    dep = build_deployment(seed=1)
    client = NewFlowSource(dep.sim, dep.client, dep.servers[0].ip, rate_fps=50.0)
    client.start(at=0.5, stop_at=5.5)
    dep.sim.run(until=8.0)
    failure = client_flow_failure_fraction(
        dep.client.sent_tap, dep.servers[0].recv_tap, start=1.0, end=5.0
    )
    assert failure == 0.0
    assert dep.scotch.activations == 0  # no congestion, no overlay


def test_overlay_activates_and_protects_under_flood():
    dep = build_deployment(seed=1)
    sim = dep.sim
    client = NewFlowSource(sim, dep.client, dep.servers[0].ip, rate_fps=100.0)
    attack = SpoofedFlood(sim, dep.attacker, dep.servers[0].ip, rate_fps=2000.0)
    client.start(at=0.5, stop_at=14.0)
    attack.start(at=2.0, stop_at=14.0)
    sim.run(until=15.0)
    assert dep.scotch.activations == 1
    assert "edge" in dep.scotch.overlay.active
    failure = client_flow_failure_fraction(
        dep.client.sent_tap, dep.servers[0].recv_tap, start=4.0, end=12.0
    )
    assert failure < 0.02
    # The overlay really is carrying the excess.
    counts = dep.scotch.flow_db.counts()
    assert counts.get("overlay", 0) > counts.get("physical", 0)


def test_vanilla_fails_under_same_flood():
    from repro.controller.reactive_app import ReactiveForwardingApp

    dep = build_deployment(seed=1, add_scotch_app=False)
    dep.controller.add_app(ReactiveForwardingApp())
    sim = dep.sim
    client = NewFlowSource(sim, dep.client, dep.servers[0].ip, rate_fps=100.0)
    attack = SpoofedFlood(sim, dep.attacker, dep.servers[0].ip, rate_fps=2000.0)
    client.start(at=0.5, stop_at=14.0)
    attack.start(at=2.0, stop_at=14.0)
    sim.run(until=15.0)
    failure = client_flow_failure_fraction(
        dep.client.sent_tap, dep.servers[0].recv_tap, start=4.0, end=12.0
    )
    assert failure > 0.7


def test_withdrawal_restores_direct_operation():
    dep = build_deployment(seed=1)
    sim = dep.sim
    client = NewFlowSource(sim, dep.client, dep.servers[0].ip, rate_fps=100.0)
    attack = SpoofedFlood(sim, dep.attacker, dep.servers[0].ip, rate_fps=2000.0)
    client.start(at=0.5, stop_at=25.0)
    attack.start(at=2.0, stop_at=10.0)
    sim.run(until=27.0)
    assert dep.scotch.withdrawal.withdrawals == 1
    assert dep.scotch.overlay.active == set()
    # Default rules removed from the edge switch.
    defaults = [
        e for e in dep.edge.datapath.table(0).entries()
        if e.priority == PRIORITY_SCOTCH_DEFAULT
    ]
    assert defaults == []
    # Post-withdrawal traffic unaffected.
    failure = client_flow_failure_fraction(
        dep.client.sent_tap, dep.servers[0].recv_tap, start=20.0, end=25.0
    )
    assert failure == 0.0


def test_packet_ins_attributed_to_origin_switch():
    dep = build_deployment(seed=2)
    sim = dep.sim
    attack = SpoofedFlood(sim, dep.attacker, dep.servers[0].ip, rate_fps=1500.0)
    attack.start(at=0.5, stop_at=6.0)
    sim.run(until=7.0)
    app = dep.scotch
    # Every overlay-observed flow carries the edge switch as first hop and
    # the attacker's real ingress port.
    attacked_port = dep.network.port_between("edge", "attacker")
    overlay_infos = [i for i in app.flow_db._flows.values() if i.entry_vswitch]
    assert overlay_infos
    assert all(i.first_hop_switch == "edge" for i in overlay_infos)
    assert all(i.ingress_port == attacked_port for i in overlay_infos)


def test_elephant_migration_end_to_end():
    dep = build_deployment(seed=3)
    sim = dep.sim
    server_ip = dep.servers[0].ip
    attack = SpoofedFlood(sim, dep.attacker, server_ip, rate_fps=1500.0)
    attack.start(at=0.5, stop_at=18.0)
    key = FlowKey("10.99.0.99", server_ip, 6, 5555, 80)
    dep.attacker.start_flow(
        FlowSpec(key=key, start_time=3.0, size_packets=4000, packet_size=1500,
                 rate_pps=500.0, batch=10)
    )
    sim.run(until=16.0)
    info = dep.scotch.flow_db.get(key)
    assert info.route == "physical"
    assert info.migrated_at is not None
    # Lossless hand-over.
    record = dep.servers[0].recv_tap.flow(key)
    assert record.packets_received == 4000
    # Overlay rules cleaned up.
    assert info.overlay_sites == []
    for mv in dep.mesh_vswitches:
        leftovers = [
            e for e in mv.datapath.table(1).entries()
            if e.match.has_five_tuple and e.match.five_tuple_key() == tuple(key)
        ]
        assert leftovers == []


def test_policy_consistency_through_migration():
    dep = build_deployment(seed=3, with_firewall=True)
    sim = dep.sim
    server_ip = dep.servers[0].ip
    attack = SpoofedFlood(sim, dep.attacker, server_ip, rate_fps=1500.0)
    attack.start(at=0.5, stop_at=18.0)
    key = FlowKey("10.99.0.99", server_ip, 6, 5555, 80)
    dep.attacker.start_flow(
        FlowSpec(key=key, start_time=3.0, size_packets=4000, packet_size=1500,
                 rate_pps=500.0, batch=10)
    )
    sim.run(until=16.0)
    info = dep.scotch.flow_db.get(key)
    assert info.middlebox_chain == ["fw0"]
    assert info.route == "physical"
    # Same firewall instance saw the whole flow: no mid-flow rejects, and
    # every packet of the elephant arrived.
    assert dep.firewall.rejected_unknown == 0
    assert dep.firewall.knows(key)
    assert dep.servers[0].recv_tap.flow(key).packets_received == 4000


def test_vswitch_failover_to_backup():
    dep = build_deployment(seed=4, backups=1)
    sim = dep.sim
    server_ip = dep.servers[0].ip
    attack = SpoofedFlood(sim, dep.attacker, server_ip, rate_fps=2000.0)
    client = NewFlowSource(sim, dep.client, server_ip, rate_fps=100.0)
    attack.start(at=0.5, stop_at=20.0)
    client.start(at=0.5, stop_at=20.0)
    # Kill one mesh vSwitch mid-attack.
    victim = dep.mesh_vswitches[0]
    sim.schedule(6.0, victim.fail)
    sim.run(until=20.0)
    heartbeat = dep.scotch.heartbeat
    assert heartbeat.failures_detected == 1
    assert victim.name in dep.scotch.overlay.dead
    # The select group at the edge no longer points at the victim.
    group = dep.edge.datapath.groups.get(1)
    assert victim.name not in [b.label for b in group.buckets]
    # Client flows keep succeeding after the failover settles.
    failure = client_flow_failure_fraction(
        dep.client.sent_tap, dep.servers[0].recv_tap, start=12.0, end=19.0
    )
    assert failure < 0.05


def test_vswitch_recovery_rejoins():
    dep = build_deployment(seed=4, backups=1)
    sim = dep.sim
    attack = SpoofedFlood(sim, dep.attacker, dep.servers[0].ip, rate_fps=2000.0)
    attack.start(at=0.5, stop_at=25.0)
    victim = dep.mesh_vswitches[0]
    sim.schedule(6.0, victim.fail)
    sim.schedule(14.0, victim.recover)
    sim.run(until=25.0)
    assert dep.scotch.heartbeat.recoveries_detected >= 1
    assert victim.name not in dep.scotch.overlay.dead
