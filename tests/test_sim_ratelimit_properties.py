"""Property tests for :mod:`repro.sim.ratelimit`.

Two contracts the whole control-path model depends on:

* :class:`TokenBucket` conformance — over any prefix of the run the
  granted cost never exceeds ``capacity + rate * elapsed``, and the
  token level stays within ``[0, capacity]`` despite lazy refill;
* :class:`RateLimitedServer` conservation — every accepted item is
  served exactly once, in FIFO order, at most one completion per
  ``1/rate`` seconds, and the idle→busy resume on a fresh submit is
  idempotent (the service chain restarts exactly once, never losing or
  double-serving items, no matter how the submissions are spaced).
"""

from hypothesis import given, strategies as st

from repro.sim.engine import Simulator
from repro.sim.ratelimit import RateLimitedServer, TokenBucket

EPS = 1e-6


@given(
    rate=st.sampled_from([0.5, 1.0, 4.0]),
    capacity=st.sampled_from([1.0, 2.5, 8.0]),
    ops=st.lists(
        st.tuples(st.floats(0.0, 3.0), st.floats(0.1, 3.0)),  # (gap, cost)
        min_size=1,
        max_size=30,
    ),
)
def test_token_bucket_never_exceeds_rate(rate, capacity, ops):
    sim = Simulator()
    bucket = TokenBucket(sim, rate, capacity)
    granted = []

    def attempt(cost):
        if bucket.allow(cost):
            granted.append((sim.now, cost))
        level = bucket.tokens
        assert -EPS <= level <= capacity + EPS

    time = 0.0
    for gap, cost in ops:
        time += gap
        sim.schedule_at(time, attempt, cost)
    sim.run()

    # Conformance bound over every prefix of the run: burst + refill.
    running = 0.0
    for when, cost in granted:
        running += cost
        assert running <= capacity + rate * when + EPS
    assert bucket.allowed == len(granted)
    assert bucket.allowed + bucket.denied == len(ops)


@st.composite
def submission_times(draw):
    """Arrival times mixing bursts (0-gaps) with idle periods long
    enough to drain the server between batches."""
    gaps = draw(
        st.lists(st.sampled_from([0.0, 0.1, 2.0]), min_size=1, max_size=25)
    )
    times, time = [], 0.0
    for gap in gaps:
        time += gap
        times.append(time)
    return times


@given(
    times=submission_times(),
    rate=st.sampled_from([1.0, 5.0]),
    capacity=st.sampled_from([None, 1, 3]),
)
def test_server_conserves_items_and_serves_fifo(times, rate, capacity):
    sim = Simulator()
    completions = []
    server = RateLimitedServer(
        sim, rate, capacity, lambda item: completions.append((sim.now, item))
    )
    accepted = []

    def feed(item):
        if server.submit(item):
            accepted.append(item)

    for item, time in enumerate(times):
        sim.schedule_at(time, feed, item)
    sim.run()

    # Conservation: accepted == served (exactly once, FIFO), the rest dropped.
    assert [item for _, item in completions] == accepted
    assert server.served == len(accepted)
    assert server.dropped == len(times) - len(accepted)
    assert server.backlog() == 0
    assert not server.busy
    # Rate conformance: one completion per service time, never faster —
    # idle gaps only ever stretch the spacing.
    spacing = [b - a for (a, _), (b, _) in zip(completions, completions[1:])]
    assert all(gap >= server.service_time - EPS for gap in spacing)


@given(
    first=submission_times(),
    second=submission_times(),
    rate=st.sampled_from([1.0, 5.0]),
)
def test_server_idle_resume_is_idempotent(first, second, rate):
    """Stop/start: after the server drains to idle, a fresh batch
    restarts the service chain exactly once — totals and FIFO order are
    as if the batches had been one submission stream."""
    sim = Simulator()
    completions = []
    server = RateLimitedServer(
        sim, rate, None, lambda item: completions.append(item)
    )
    for item, time in enumerate(first):
        sim.schedule_at(time, server.submit, item)
    sim.run()
    assert not server.busy and server.backlog() == 0
    assert completions == list(range(len(first)))

    resume_at = sim.now  # includes a same-instant resume when gap == 0
    for offset, gap in enumerate(second):
        sim.schedule_at(resume_at + gap, server.submit, len(first) + offset)
    sim.run()
    assert not server.busy and server.backlog() == 0
    assert server.served == len(first) + len(second)
    assert completions == list(range(len(first) + len(second)))
