"""Tests for the simulation-time tracer and its exports."""

import json

from repro.obs.tracer import Tracer, chrome_events, read_jsonl
from repro.sim.engine import Simulator


def test_span_records_sim_time():
    sim = Simulator()
    tracer = Tracer()
    tracer.bind(sim)
    span = tracer.begin("work", switch="edge")
    sim.schedule(1.5, tracer.end, span)
    sim.run()
    (record,) = tracer.records()
    assert record["name"] == "work"
    assert record["t0"] == 0.0
    assert record["t1"] == 1.5
    assert record["args"] == {"switch": "edge"}


def test_end_is_idempotent():
    tracer = Tracer()
    span = tracer.begin("x")
    tracer.end(span)
    tracer.end(span, extra=1)  # ignored
    tracer.end(-1)  # unknown id ignored
    (record,) = tracer.records()
    assert "extra" not in record["args"]


def test_annotate_and_elapsed():
    sim = Simulator()
    tracer = Tracer()
    tracer.bind(sim)
    span = tracer.begin("x")
    tracer.annotate(span, note="hello")
    sim.schedule(2.0, lambda: None)
    sim.run()
    assert tracer.elapsed(span) == 2.0
    tracer.end(span)
    assert tracer.elapsed(span) is None
    (record,) = tracer.records()
    assert record["args"]["note"] == "hello"


def test_open_spans_appear_after_completed():
    tracer = Tracer()
    open_span = tracer.begin("open")
    done = tracer.begin("done")
    tracer.end(done)
    names = [r["name"] for r in tracer.records()]
    assert names == ["done", "open"]
    assert [r["name"] for r in tracer.records(include_open=False)] == ["done"]
    assert tracer.records()[1]["t1"] is None
    assert open_span >= 0


def test_instant():
    tracer = Tracer()
    tracer.instant("tick", track="monitor", switch="edge")
    (record,) = tracer.records()
    assert record["type"] == "instant"
    assert record["t0"] == record["t1"]


def test_jsonl_roundtrip(tmp_path):
    tracer = Tracer()
    tracer.end(tracer.begin("a", switch="s1"))
    tracer.instant("i")
    tracer.begin("open")
    path = str(tmp_path / "t.jsonl")
    assert tracer.export_jsonl(path) == 3
    assert read_jsonl(path) == tracer.records()


def test_chrome_export_is_valid_trace_event_json(tmp_path):
    sim = Simulator()
    tracer = Tracer()
    tracer.bind(sim, run=3)
    span = tracer.begin("stage", track="switch:edge")
    sim.schedule(0.001, tracer.end, span)
    sim.run()
    tracer.instant("mark", track="monitor")
    path = str(tmp_path / "t.chrome.json")
    count = tracer.export_chrome(path)
    with open(path) as handle:
        data = json.load(handle)
    events = data["traceEvents"]
    assert len(events) == count
    complete = [e for e in events if e["ph"] == "X"]
    instants = [e for e in events if e["ph"] == "i"]
    metadata = [e for e in events if e["ph"] == "M"]
    assert len(complete) == 1 and len(instants) == 1 and len(metadata) == 2
    (x,) = complete
    assert x["pid"] == 3
    assert x["ts"] == 0.0
    assert x["dur"] == 1000.0  # 1 ms in microseconds
    assert instants[0]["s"] == "t"
    # Track names ride on thread metadata events.
    names = {e["args"]["name"] for e in metadata}
    assert names == {"switch:edge", "monitor"}


def test_chrome_events_distinct_tids_per_track():
    records = [
        {"type": "span", "run": 0, "name": "a", "cat": "c", "track": "t1",
         "t0": 0.0, "t1": 1.0, "args": {}},
        {"type": "span", "run": 0, "name": "b", "cat": "c", "track": "t2",
         "t0": 0.0, "t1": 1.0, "args": {}},
    ]
    events = chrome_events(records)
    tids = {e["tid"] for e in events if e["ph"] == "X"}
    assert len(tids) == 2


def test_rebind_advances_run_index():
    tracer = Tracer()
    tracer.bind(Simulator())
    first = tracer.run
    tracer.bind(Simulator())
    assert tracer.run == first + 1
    tracer.bind(Simulator(), run=9)
    assert tracer.run == 9


def test_chrome_export_multi_run_pid_mapping(tmp_path):
    """A figure sweep binds several simulators: each run must land on
    its own Chrome pid, with per-(run, track) thread metadata."""
    tracer = Tracer()
    for run in range(3):
        sim = Simulator()
        tracer.bind(sim, run=run)
        span = tracer.begin("stage", track="switch:edge")
        sim.schedule(0.002, tracer.end, span)
        tracer.instant("mark", track="monitor")
        sim.run()
    path = str(tmp_path / "multi.chrome.json")
    count = tracer.export_chrome(path)
    with open(path) as handle:
        events = json.load(handle)["traceEvents"]
    assert len(events) == count
    complete = [e for e in events if e["ph"] == "X"]
    instants = [e for e in events if e["ph"] == "i"]
    metadata = [e for e in events if e["ph"] == "M"]
    # One span + one instant per run, each on its own pid.
    assert sorted(e["pid"] for e in complete) == [0, 1, 2]
    assert sorted(e["pid"] for e in instants) == [0, 1, 2]
    # Instants carry the thread scope.
    assert {e["s"] for e in instants} == {"t"}
    # Two tracks per run -> six thread_name metadata events, with tids
    # unique per (pid, track) pair.
    assert len(metadata) == 6
    assert all(e["name"] == "thread_name" for e in metadata)
    pairs = {(e["pid"], e["args"]["name"]): e["tid"] for e in metadata}
    assert len(pairs) == 6
    for event in complete + instants:
        track = "switch:edge" if event["ph"] == "X" else "monitor"
        assert event["tid"] == pairs[(event["pid"], track)]


def test_chrome_events_open_span_gets_zero_duration():
    records = [{"type": "span", "run": 0, "name": "open", "cat": "c",
                "track": "t", "t0": 2.0, "t1": None, "args": {}}]
    (meta, event) = chrome_events(records)
    assert meta["ph"] == "M"
    assert event["dur"] == 0.0 and event["ts"] == 2e6


def test_export_jsonl_writes_schema_header(tmp_path):
    tracer = Tracer()
    tracer.end(tracer.begin("a"))
    path = str(tmp_path / "t.jsonl")
    assert tracer.export_jsonl(path) == 1
    with open(path) as handle:
        lines = handle.read().strip().splitlines()
    assert json.loads(lines[0]) == {"type": "schema", "schema": "trace",
                                    "version": 1}
    assert len(lines) == 2
    # read_jsonl skips the header transparently.
    assert read_jsonl(path) == tracer.records()


def test_causality_stamps_span_ids_and_event_ids():
    sim = Simulator()
    sim.enable_provenance()
    tracer = Tracer()
    tracer.causality = True
    tracer.bind(sim)

    def work():
        tracer.end(tracer.begin("stage"))
        tracer.instant("mark")

    sim.schedule(0.5, work)
    sim.run()
    span, instant = tracer.records()
    assert span["id"] == 0 and instant["id"] == 1
    assert span["ev"] == [0, 0] and instant["ev"] == [0, 0]
