"""Postmortem bundles: capture on alert/invariant triggers, bounded
collection, deterministic serialization, and the chaos-run byte-identity
contract (same seed => byte-identical bundle files)."""

import json

import pytest

from repro.faults import FaultPlan, run_chaos
from repro.faults.invariants import Violation
from repro.obs.flight import FlightRecorder
from repro.obs.postmortem import (
    PostmortemCollector,
    bundle_filename,
    bundle_jsonl,
    export_bundles,
    open_faults,
    read_bundle,
)
from repro.sim.engine import Simulator


# ----------------------------------------------------------------------
# open_faults
# ----------------------------------------------------------------------
def test_open_faults_tracks_windows():
    log = [
        {"t": 1.0, "kind": "channel_loss", "target": "edge", "phase": "inject",
         "duration": 2.0},
        {"t": 1.5, "kind": "vswitch_crash", "target": "mv0", "phase": "down"},
        {"t": 2.0, "kind": "vswitch_crash", "target": "mv0", "phase": "up"},
        {"t": 2.5, "kind": "controller_outage", "target": "controller",
         "phase": "inject"},
    ]
    # At t=2.6: the loss window is still open (until 3.0), the crash has
    # healed, the outage has no duration so it stays open until cleared.
    assert open_faults(log, 2.6) == [
        {"kind": "channel_loss", "target": "edge", "since": 1.0},
        {"kind": "controller_outage", "target": "controller", "since": 2.5},
    ]
    # At t=3.5 the self-expiring loss window has closed.
    assert open_faults(log, 3.5) == [
        {"kind": "controller_outage", "target": "controller", "since": 2.5},
    ]
    # Future actions are ignored.
    assert open_faults(log, 0.5) == []


# ----------------------------------------------------------------------
# Collector mechanics (bare simulator, synthetic triggers)
# ----------------------------------------------------------------------
def _alert(name, state, t, **extra):
    return {"alert": name, "state": state, "t": t, **extra}


def test_collector_bundles_on_firing_and_tracks_context():
    sim = Simulator()
    sim.enable_provenance()
    flight = FlightRecorder(events=8)
    flight.bind(sim)
    collector = PostmortemCollector(sim, flight=flight,
                                    context={"seed": 9, "scenario": "unit"})

    def fire():
        collector.on_alert(_alert("hot", "firing", sim.now,
                                  sli="err_rate", value=4.0,
                                  severity="warning"))

    def violate():
        collector.on_violation(Violation(sim.now, "black_hole", "mv0 stale"))

    def resolve():
        collector.on_alert(_alert("hot", "resolved", sim.now))
        collector.on_violation(Violation(sim.now, "late", "after resolve"))

    sim.schedule(1.0, fire)
    sim.schedule(2.0, violate)
    sim.schedule(3.0, resolve)
    sim.run()

    assert [b["trigger"]["kind"] for b in collector.bundles] == [
        "alert", "invariant", "invariant"]
    first, second, third = collector.bundles
    assert first["trigger"]["name"] == "hot"
    assert first["trigger"]["t"] == 1.0
    assert first["trigger"]["detail"] == {"sli": "err_rate", "value": 4.0,
                                          "severity": "warning"}
    # The triggering simulator event and its ancestry are captured.
    assert first["trigger"]["event"] == [0, 0]
    assert first["ancestry"][0]["callback"].endswith("<locals>.fire")
    assert first["context"] == {"seed": 9, "scenario": "unit"}
    # While "hot" fires, it appears in later bundles' context...
    assert second["alerts_firing"] == [{"alert": "hot", "since": 1.0}]
    assert second["trigger"]["detail"] == {"detail": "mv0 stale"}
    # ...and disappears after it resolves.
    assert third["alerts_firing"] == []
    # The flight window froze the dispatch history up to each trigger.
    assert [e["t"] for e in first["flight"]["events"]] == [1.0]


def test_collector_caps_bundles_and_counts_drops():
    sim = Simulator()
    collector = PostmortemCollector(sim, max_bundles=2)
    for index in range(5):
        collector.on_violation(Violation(float(index), "inv", "d"))
    assert len(collector.bundles) == 2
    assert collector.dropped == 3


def test_collector_without_flight_or_provenance_degrades_cleanly():
    sim = Simulator()
    collector = PostmortemCollector(sim)
    collector.on_violation(Violation(0.0, "inv", "d"))
    (bundle,) = collector.bundles
    assert bundle["ancestry"] == []
    assert bundle["trigger"]["event"] is None
    assert bundle["flight"] == {"events": [], "spans": [],
                                "metric_deltas": {}}


# ----------------------------------------------------------------------
# Serialization
# ----------------------------------------------------------------------
def _sample_bundle():
    sim = Simulator()
    sim.enable_provenance()
    flight = FlightRecorder(events=8)
    flight.bind(sim)
    collector = PostmortemCollector(
        sim, flight=flight, context={"seed": 1},
    )
    sim.schedule(1.0, collector.on_violation,
                 Violation(1.0, "black hole!", "mv0"))
    sim.run()
    (bundle,) = collector.bundles
    return bundle


def test_bundle_jsonl_roundtrips_through_read_bundle(tmp_path):
    bundle = _sample_bundle()
    text = bundle_jsonl(bundle)
    first_line = json.loads(text.splitlines()[0])
    assert first_line == {"type": "schema", "schema": "postmortem",
                          "version": 1}
    (path,) = export_bundles([bundle], str(tmp_path / "pm"))
    loaded = read_bundle(path)
    assert loaded["trigger"] == bundle["trigger"]
    assert loaded["ancestry"] == bundle["ancestry"]
    assert loaded["flight"] == bundle["flight"]
    assert loaded["context"] == bundle["context"]


def test_bundle_filename_is_sanitized():
    bundle = _sample_bundle()
    name = bundle_filename(bundle)
    assert name == "postmortem-000-invariant-black_hole_.jsonl"


# ----------------------------------------------------------------------
# Chaos integration: deterministic bundles, byte-identical across runs
# ----------------------------------------------------------------------
def _small_chaos():
    plan = FaultPlan()
    plan.channel_loss(1.5, "edge", duration=1.0, loss=0.08, duplicate=0.02,
                      jitter=0.004)
    plan.ofa_stall(3.0, "edge", duration=0.8)
    return run_chaos(seed=3, duration=6.0, client_rate=50.0,
                     attack_rate=600.0, plan=plan, health=True,
                     postmortem=True)


@pytest.mark.slow
def test_same_seed_chaos_bundles_are_byte_identical(tmp_path):
    texts = []
    for index in range(2):
        report = _small_chaos()
        assert report.postmortem_enabled
        assert report.postmortems, "the gauntlet must trigger bundles"
        directory = str(tmp_path / f"run{index}")
        paths = export_bundles(report.postmortems, directory)
        texts.append([open(p, "rb").read() for p in paths])
    assert texts[0] == texts[1]
    assert all(blob for blob in texts[0])


@pytest.mark.slow
def test_chaos_bundles_capture_ancestry_and_fault_context():
    report = _small_chaos()
    for bundle in report.postmortems:
        assert bundle["trigger"]["kind"] in ("alert", "invariant")
        assert bundle["ancestry"], "provenance must be threaded through"
        assert bundle["flight"]["events"], "flight ring must be attached"
        assert bundle["context"]["seed"] == 3
    # The ofa_stall window is visible from a bundle triggered inside it.
    stalled = [b for b in report.postmortems
               if any(f["kind"] == "ofa_stall" for f in b["faults_open"])]
    in_window = [b for b in report.postmortems
                 if 3.0 <= b["trigger"]["t"] < 3.8]
    assert stalled == in_window
