"""Adverse-timing failover tests (§5.6 under hostile conditions).

The happy-path failover suite (test_core_failover.py) fails a vSwitch
in quiet conditions.  These tests hit the awkward interleavings: death
in the middle of an echo exchange, recovery while the failover GroupMod
is still in flight, and a control channel that flaps faster than the
failover settles.
"""

import pytest

from repro.core.config import ScotchConfig
from repro.faults import FaultInjector, FaultPlan
from repro.openflow.messages import GroupMod
from repro.testbed.deployment import build_deployment
from repro.traffic import SpoofedFlood


def build(seed=4):
    config = ScotchConfig(
        heartbeat_interval=0.25,
        heartbeat_miss_limit=2,
        reliable_install_timeout=0.2,
        reliable_install_timeout_cap=1.0,
        reliable_install_max_retries=3,
    )
    return build_deployment(seed=seed, racks=2, mesh_per_rack=1, backups=1,
                            config=config)


def _flood(dep, stop_at=20.0):
    flood = SpoofedFlood(dep.sim, dep.attacker, dep.servers[0].ip,
                         rate_fps=2000.0)
    flood.start(at=0.5, stop_at=stop_at)
    return flood


def _spy_group_mods(dep):
    """Record every GroupMod actually delivered to the edge switch."""
    delivered = []
    original = dep.edge.channel.switch_sink

    def spy(message):
        if isinstance(message, GroupMod):
            delivered.append([b.label for b in message.buckets])
        original(message)

    dep.edge.channel.switch_sink = spy
    return delivered


def test_vswitch_death_in_the_middle_of_an_echo_exchange():
    """The victim dies right after its echo request goes out; the reply
    it would have sent must not arrive (in-flight messages die with the
    link), so the miss counter keeps climbing and detection still
    fires exactly once."""
    dep = build()
    victim = dep.mesh_vswitches[0]
    original_echo = dep.controller.echo
    killed = []

    def echo_spy(dpid):
        original_echo(dpid)
        if dpid == victim.name and not killed and dep.sim.now > 2.0:
            killed.append(dep.sim.now)
            # Strike while the request is on the wire.
            dep.sim.schedule(0.2e-3, victim.fail)

    dep.controller.echo = echo_spy
    dep.sim.run(until=10.0)
    assert killed
    assert dep.scotch.heartbeat.failures_detected == 1
    assert dep.scotch.heartbeat.recoveries_detected == 0  # no ghost echo
    assert victim.name in dep.scotch.overlay.dead


def test_recovery_arriving_mid_failover_converges():
    """The victim comes back while its failover GroupMod is still being
    pushed; the monitor must detect the recovery and re-admit it without
    double-counting either transition."""
    dep = build()
    _flood(dep)
    victim = dep.mesh_vswitches[0]
    heartbeat = dep.scotch.heartbeat
    original = heartbeat._declare_dead

    def declare_spy(dpid):
        original(dpid)
        if dpid == victim.name:
            dep.sim.schedule(0.05, victim.recover)  # GroupMod still in flight

    heartbeat._declare_dead = declare_spy
    dep.sim.schedule(3.0, victim.fail)
    dep.sim.run(until=15.0)
    assert heartbeat.failures_detected == 1
    assert heartbeat.recoveries_detected == 1
    assert dep.scotch.overlay.dead == set()
    group = dep.edge.datapath.groups.get(1)
    labels = [b.label for b in group.buckets]
    assert victim.name in labels  # re-admitted after recovery
    assert len(labels) == len(set(labels))  # no duplicated buckets


def test_flapping_channel_keeps_counters_and_group_consistent():
    """A channel flapping slower than the detection window causes
    repeated death/recovery cycles; every failure must be matched by a
    recovery, the reliable layer must not abandon the refreshes, and the
    final group must contain each bucket exactly once."""
    dep = build()
    _flood(dep)
    victim = dep.mesh_vswitches[0]
    delivered = _spy_group_mods(dep)
    plan = FaultPlan().channel_flap(3.0, victim.name, period=1.2, flaps=2)
    FaultInjector(dep.sim, dep.network, dep.controller, plan).start()
    dep.sim.run(until=15.0)
    heartbeat = dep.scotch.heartbeat
    assert heartbeat.failures_detected >= 1
    assert heartbeat.failures_detected == heartbeat.recoveries_detected
    assert dep.scotch.overlay.dead == set()
    assert dep.scotch.reliable.abandoned == 0
    group = dep.edge.datapath.groups.get(1)
    labels = [b.label for b in group.buckets]
    assert victim.name in labels
    assert len(labels) == len(set(labels))
    # Every delivered GroupMod carried a duplicate-free bucket set.
    assert delivered
    for bucket_labels in delivered:
        assert len(bucket_labels) == len(set(bucket_labels))


def test_flap_faster_than_detection_is_invisible():
    """A blip that swallows only a single echo (shorter than the
    miss_limit window) must not trigger failover — the miss counter
    resets on the next successful exchange."""
    dep = build()
    _flood(dep)
    victim = dep.mesh_vswitches[0]
    # Down 3.2..3.3: exactly one heartbeat tick (3.25) lands in it.
    plan = FaultPlan().channel_flap(3.2, victim.name, period=0.1, flaps=1)
    FaultInjector(dep.sim, dep.network, dep.controller, plan).start()
    dep.sim.run(until=12.0)
    assert dep.scotch.heartbeat.failures_detected == 0
    assert dep.scotch.overlay.dead == set()


def test_death_during_flap_stays_dead():
    """A vSwitch that crashes while its channel is flapping must end up
    (and stay) declared dead — the flap-up must not resurrect it."""
    dep = build()
    _flood(dep)
    victim = dep.mesh_vswitches[0]
    plan = FaultPlan().channel_flap(3.0, victim.name, period=1.2, flaps=2)
    FaultInjector(dep.sim, dep.network, dep.controller, plan).start()
    dep.sim.schedule(3.5, victim.fail)  # dies while the channel is down
    dep.sim.run(until=15.0)
    heartbeat = dep.scotch.heartbeat
    assert heartbeat.failures_detected == 1
    assert heartbeat.recoveries_detected == 0
    assert victim.name in dep.scotch.overlay.dead
    group = dep.edge.datapath.groups.get(1)
    labels = [b.label for b in group.buckets]
    assert victim.name not in labels
    assert "bv0" in labels
