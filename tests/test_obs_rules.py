"""Tests for the alert-rule DSL and its pending/firing state machine."""

import json

import pytest

from repro.obs.rules import (
    AlertState,
    builtin_rules,
    parse_rule,
    parse_rules,
    timeline_jsonl,
)


# ----------------------------------------------------------------------
# DSL parsing
# ----------------------------------------------------------------------
def test_parse_full_rule():
    rule = parse_rule("hot: ofa.saturation > 0.9 for 0.5 clear 0.6 "
                      "detects flash_crowd,partition severity critical")
    assert rule.name == "hot"
    assert rule.sli == "ofa.saturation"
    assert rule.op == ">"
    assert rule.threshold == 0.9
    assert rule.for_s == 0.5
    assert rule.clear == 0.6
    assert rule.detects == ("flash_crowd", "partition")
    assert rule.severity == "critical"


def test_parse_minimal_rule_defaults():
    rule = parse_rule("low: some.rate < 5")
    assert rule.for_s == 0.0
    assert rule.clear is None
    assert rule.detects == ()
    assert rule.severity == "warning"
    assert rule.clear_level == 5.0  # no hysteresis: clears at threshold


def test_rules_round_trip_through_to_line():
    for rule in builtin_rules():
        assert parse_rule(rule.to_line()) == rule


@pytest.mark.parametrize("line", [
    "no colon here",
    ": sli > 1",              # empty name
    "name: too few",
    "name: sli >= 1",         # unknown operator
    "name: sli > notanum",
    "name: sli > 1 for",      # dangling keyword
    "name: sli > 1 for -1",   # negative hold
    "name: sli > 1 frobnicate 2",
])
def test_parse_rejects_bad_lines(line):
    with pytest.raises(ValueError):
        parse_rule(line)


def test_parse_rules_skips_comments_and_rejects_duplicates():
    rules = parse_rules("# a comment\n\na: x > 1  # trailing\nb: y < 2\n")
    assert [r.name for r in rules] == ["a", "b"]
    with pytest.raises(ValueError):
        parse_rules("a: x > 1\na: x > 2\n")


def test_builtin_rules_cover_the_failure_shapes():
    rules = builtin_rules()
    assert [r.name for r in rules] == [
        "ofa_overload", "path_congestion", "vswitch_dead",
        "controller_outage", "estimator_starved",
    ]
    # Every built-in rule declares the classes it detects and uses
    # hysteresis, so the scorecard join and the resolve path are
    # always exercised.
    assert all(r.detects for r in rules)
    assert all(r.clear is not None for r in rules)


# ----------------------------------------------------------------------
# State machine
# ----------------------------------------------------------------------
def test_pending_hold_then_firing_then_hysteresis_resolve():
    state = AlertState(parse_rule("r: s > 10 for 0.5 clear 5"))
    assert state.evaluate(0.0, 3.0) == []               # below threshold
    records = state.evaluate(0.25, 20.0)                # breach -> pending
    assert [r["state"] for r in records] == ["pending"]
    assert state.evaluate(0.5, 20.0) == []              # still holding
    records = state.evaluate(0.75, 20.0)                # held 0.5s -> firing
    assert [r["state"] for r in records] == ["firing"]
    assert state.firing
    # Below threshold but above the clear level: hysteresis keeps firing.
    assert state.evaluate(1.0, 7.0) == []
    records = state.evaluate(1.25, 4.0)                 # <= clear -> resolved
    assert [r["state"] for r in records] == ["resolved"]
    assert state.firings == [[0.75, 1.25]]


def test_pending_cancelled_when_breach_ends_early():
    state = AlertState(parse_rule("r: s > 10 for 1"))
    state.evaluate(0.0, 11.0)
    records = state.evaluate(0.5, 9.0)
    assert [r["state"] for r in records] == ["cancelled"]
    assert state.firings == []
    assert not state.firing


def test_zero_hold_fires_immediately():
    state = AlertState(parse_rule("r: s > 1"))
    records = state.evaluate(0.0, 2.0)
    assert [r["state"] for r in records] == ["firing"]
    assert state.firings == [[0.0, None]]  # still open


def test_less_than_rule_arms_only_after_activity():
    state = AlertState(parse_rule("r: s < 0.1 clear 0.5"))
    # The SLI never showed activity: a "rate fell to zero" rule must not
    # fire at the start of a run before the subsystem ever ran.
    assert state.evaluate(0.0, 0.0) == []
    assert state.evaluate(0.25, 0.0) == []
    assert state.evaluate(0.5, 0.9) == []   # reaches clear level: armed
    records = state.evaluate(0.75, 0.0)     # now a drop to zero fires
    assert [r["state"] for r in records] == ["firing"]
    records = state.evaluate(1.0, 0.8)      # recovery resolves
    assert [r["state"] for r in records] == ["resolved"]
    assert state.firings == [[0.75, 1.0]]


def test_timeline_jsonl_is_stable_and_parseable():
    state = AlertState(parse_rule("r: s > 1 severity critical"))
    timeline = state.evaluate(0.5, 2.0) + state.evaluate(1.0, 0.5)
    text = timeline_jsonl(timeline)
    assert text.splitlines()[0] == (
        '{"alert":"r","severity":"critical","sli":"s",'
        '"state":"firing","t":0.5,"value":2.0}')
    assert [json.loads(line)["state"] for line in text.splitlines()] == [
        "firing", "resolved"]
