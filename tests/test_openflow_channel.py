"""Tests for the control channel and message types."""

import pytest

from repro.openflow.channel import ControlChannel
from repro.openflow.messages import EchoRequest, FlowMod, PacketIn, next_xid
from repro.sim.engine import Simulator


def test_latency_applied_both_directions():
    sim = Simulator()
    channel = ControlChannel(sim, "sw", latency=0.1)
    to_controller, to_switch = [], []
    channel.controller_sink = lambda dpid, m: to_controller.append((sim.now, dpid, m))
    channel.switch_sink = lambda m: to_switch.append((sim.now, m))

    channel.send_to_controller(PacketIn(datapath_id="sw"))
    channel.send_to_switch(FlowMod())
    sim.run()
    assert to_controller[0][0] == pytest.approx(0.1)
    assert to_controller[0][1] == "sw"
    assert to_switch[0][0] == pytest.approx(0.1)


def test_fifo_per_direction():
    sim = Simulator()
    channel = ControlChannel(sim, "sw", latency=0.01)
    seen = []
    channel.switch_sink = seen.append
    first, second = FlowMod(), FlowMod()
    channel.send_to_switch(first)
    channel.send_to_switch(second)
    sim.run()
    assert seen == [first, second]


def test_disconnect_blackholes_messages():
    sim = Simulator()
    channel = ControlChannel(sim, "sw", latency=0.01)
    seen = []
    channel.switch_sink = seen.append
    channel.disconnect()
    channel.send_to_switch(FlowMod())
    sim.run()
    assert seen == []
    channel.reconnect()
    channel.send_to_switch(FlowMod())
    sim.run()
    assert len(seen) == 1


def test_unsinked_channel_is_safe():
    sim = Simulator()
    channel = ControlChannel(sim, "sw")
    channel.send_to_controller(EchoRequest())
    channel.send_to_switch(FlowMod())
    sim.run()


def test_counters():
    sim = Simulator()
    channel = ControlChannel(sim, "sw")
    channel.controller_sink = lambda d, m: None
    channel.switch_sink = lambda m: None
    channel.send_to_controller(EchoRequest())
    channel.send_to_switch(FlowMod())
    channel.send_to_switch(FlowMod())
    assert channel.to_controller_count == 1
    assert channel.to_switch_count == 2


def test_negative_latency_rejected():
    sim = Simulator()
    with pytest.raises(ValueError):
        ControlChannel(sim, "sw", latency=-1)


def test_xids_unique_and_increasing():
    a, b = EchoRequest(), EchoRequest()
    assert b.xid > a.xid
    assert next_xid() > b.xid
