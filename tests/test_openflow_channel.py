"""Tests for the control channel and message types."""

import pytest

from repro.openflow.channel import ControlChannel
from repro.openflow.messages import EchoRequest, FlowMod, PacketIn, next_xid
from repro.sim.engine import Simulator


def test_latency_applied_both_directions():
    sim = Simulator()
    channel = ControlChannel(sim, "sw", latency=0.1)
    to_controller, to_switch = [], []
    channel.controller_sink = lambda dpid, m: to_controller.append((sim.now, dpid, m))
    channel.switch_sink = lambda m: to_switch.append((sim.now, m))

    channel.send_to_controller(PacketIn(datapath_id="sw"))
    channel.send_to_switch(FlowMod())
    sim.run()
    assert to_controller[0][0] == pytest.approx(0.1)
    assert to_controller[0][1] == "sw"
    assert to_switch[0][0] == pytest.approx(0.1)


def test_fifo_per_direction():
    sim = Simulator()
    channel = ControlChannel(sim, "sw", latency=0.01)
    seen = []
    channel.switch_sink = seen.append
    first, second = FlowMod(), FlowMod()
    channel.send_to_switch(first)
    channel.send_to_switch(second)
    sim.run()
    assert seen == [first, second]


def test_disconnect_blackholes_messages():
    sim = Simulator()
    channel = ControlChannel(sim, "sw", latency=0.01)
    seen = []
    channel.switch_sink = seen.append
    channel.disconnect()
    channel.send_to_switch(FlowMod())
    sim.run()
    assert seen == []
    channel.reconnect()
    channel.send_to_switch(FlowMod())
    sim.run()
    assert len(seen) == 1


def test_unsinked_channel_is_safe():
    sim = Simulator()
    channel = ControlChannel(sim, "sw")
    channel.send_to_controller(EchoRequest())
    channel.send_to_switch(FlowMod())
    sim.run()


def test_counters():
    sim = Simulator()
    channel = ControlChannel(sim, "sw")
    channel.controller_sink = lambda d, m: None
    channel.switch_sink = lambda m: None
    channel.send_to_controller(EchoRequest())
    channel.send_to_switch(FlowMod())
    channel.send_to_switch(FlowMod())
    assert channel.to_controller_count == 1
    assert channel.to_switch_count == 2


def test_negative_latency_rejected():
    sim = Simulator()
    with pytest.raises(ValueError):
        ControlChannel(sim, "sw", latency=-1)


def test_xids_unique_and_increasing():
    a, b = EchoRequest(), EchoRequest()
    assert b.xid > a.xid
    assert next_xid() > b.xid


# ----------------------------------------------------------------------
# Robustness: delivery-time disconnect semantics and link impairments
# (docs/robustness.md)
# ----------------------------------------------------------------------
def test_in_flight_messages_die_with_the_link():
    """A message sent before disconnect() must not arrive after it: the
    connectivity check happens at delivery time, like TCP teardown
    discarding unacked segments."""
    sim = Simulator()
    channel = ControlChannel(sim, "sw", latency=0.1)
    seen = []
    channel.switch_sink = seen.append
    channel.controller_sink = lambda d, m: seen.append(m)
    channel.send_to_switch(FlowMod())
    channel.send_to_controller(EchoRequest())
    sim.schedule(0.05, channel.disconnect)  # while both are in flight
    sim.run()
    assert seen == []


def test_in_flight_message_survives_if_link_stays_up():
    sim = Simulator()
    channel = ControlChannel(sim, "sw", latency=0.1)
    seen = []
    channel.switch_sink = seen.append
    channel.send_to_switch(FlowMod())
    sim.run()
    assert len(seen) == 1


def test_impairment_validation():
    from repro.openflow.channel import LinkImpairments

    with pytest.raises(ValueError):
        LinkImpairments(loss=1.0)
    with pytest.raises(ValueError):
        LinkImpairments(loss=-0.1)
    with pytest.raises(ValueError):
        LinkImpairments(duplicate=1.5)
    with pytest.raises(ValueError):
        LinkImpairments(jitter=-1e-3)
    LinkImpairments(loss=0.5, duplicate=0.5, jitter=0.001)  # valid


def test_loss_drops_some_messages_and_counts_them():
    from repro.openflow.channel import LinkImpairments

    sim = Simulator(seed=5)
    channel = ControlChannel(sim, "sw", latency=0.001)
    seen = []
    channel.switch_sink = seen.append
    channel.set_impairments(to_switch=LinkImpairments(loss=0.5))
    for _ in range(200):
        channel.send_to_switch(FlowMod())
    sim.run()
    assert channel.to_switch_dropped > 0
    assert len(seen) + channel.to_switch_dropped == 200
    assert 40 < channel.to_switch_dropped < 160  # ~Binomial(200, .5)


def test_loss_is_directional():
    from repro.openflow.channel import LinkImpairments

    sim = Simulator(seed=5)
    channel = ControlChannel(sim, "sw", latency=0.001)
    to_switch, to_controller = [], []
    channel.switch_sink = to_switch.append
    channel.controller_sink = lambda d, m: to_controller.append(m)
    channel.set_impairments(to_switch=LinkImpairments(loss=0.9))
    for _ in range(50):
        channel.send_to_switch(FlowMod())
        channel.send_to_controller(EchoRequest())
    sim.run()
    assert len(to_controller) == 50  # unimpaired direction untouched
    assert len(to_switch) < 50


def test_duplication_delivers_extra_copies():
    from repro.openflow.channel import LinkImpairments

    sim = Simulator(seed=5)
    channel = ControlChannel(sim, "sw", latency=0.001)
    seen = []
    channel.switch_sink = seen.append
    channel.set_impairments(to_switch=LinkImpairments(duplicate=0.5))
    for _ in range(100):
        channel.send_to_switch(FlowMod())
    sim.run()
    assert channel.to_switch_duplicated > 0
    assert len(seen) == 100 + channel.to_switch_duplicated


def test_jitter_delays_but_never_hastens():
    from repro.openflow.channel import LinkImpairments

    sim = Simulator(seed=5)
    channel = ControlChannel(sim, "sw", latency=0.01)
    times = []
    channel.switch_sink = lambda m: times.append(sim.now)
    channel.set_impairments(to_switch=LinkImpairments(jitter=0.05))
    for _ in range(50):
        channel.send_to_switch(FlowMod())
    sim.run()
    assert all(0.01 <= t <= 0.01 + 0.05 for t in times)
    assert len(set(times)) > 1  # actually jittered


def test_clearing_impairments_restores_lossless_delivery():
    from repro.openflow.channel import LinkImpairments

    sim = Simulator(seed=5)
    channel = ControlChannel(sim, "sw", latency=0.001)
    seen = []
    channel.switch_sink = seen.append
    channel.set_impairments(to_switch=LinkImpairments(loss=0.9))
    channel.set_impairments(None, None)
    for _ in range(50):
        channel.send_to_switch(FlowMod())
    sim.run()
    assert len(seen) == 50


def test_unimpaired_channel_draws_no_randomness():
    """Bit-identity guarantee: a channel never given impairments must not
    create its RNG stream at all."""
    sim = Simulator(seed=5)
    channel = ControlChannel(sim, "sw")
    channel.switch_sink = lambda m: None
    for _ in range(10):
        channel.send_to_switch(FlowMod())
    sim.run()
    assert channel._rng is None
