"""Tests for rate-limited servers and token buckets."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.sim.engine import Simulator
from repro.sim.ratelimit import RateLimitedServer, TokenBucket


class TestRateLimitedServer:
    def test_serves_at_configured_rate(self):
        sim = Simulator()
        done = []
        server = RateLimitedServer(sim, rate=10.0, queue_capacity=None,
                                   handler=lambda item: done.append(sim.now))
        for i in range(5):
            server.submit(i)
        sim.run()
        assert done == pytest.approx([0.1, 0.2, 0.3, 0.4, 0.5])

    def test_drops_when_queue_full(self):
        sim = Simulator()
        server = RateLimitedServer(sim, rate=1.0, queue_capacity=2, handler=lambda i: None)
        results = [server.submit(i) for i in range(5)]
        # First begins service immediately (dequeued), two more queue, rest drop.
        assert results == [True, True, True, False, False]
        assert server.dropped == 2

    def test_drop_handler_invoked(self):
        sim = Simulator()
        dropped = []
        server = RateLimitedServer(
            sim, rate=1.0, queue_capacity=1, handler=lambda i: None,
            drop_handler=dropped.append,
        )
        server.submit("a")
        server.submit("b")
        server.submit("c")
        assert dropped == ["c"]

    def test_served_counter(self):
        sim = Simulator()
        server = RateLimitedServer(sim, rate=100.0, queue_capacity=None, handler=lambda i: None)
        for i in range(7):
            server.submit(i)
        sim.run()
        assert server.served == 7

    def test_resumes_after_idle(self):
        sim = Simulator()
        done = []
        server = RateLimitedServer(sim, rate=10.0, queue_capacity=None,
                                   handler=lambda item: done.append((item, sim.now)))
        server.submit("a")
        sim.schedule(1.0, server.submit, "b")
        sim.run()
        assert done[0] == ("a", pytest.approx(0.1))
        assert done[1] == ("b", pytest.approx(1.1))

    def test_set_rate_changes_future_service(self):
        sim = Simulator()
        done = []
        server = RateLimitedServer(sim, rate=1.0, queue_capacity=None,
                                   handler=lambda item: done.append(sim.now))
        server.submit("a")
        server.submit("b")
        sim.schedule(0.5, server.set_rate, 100.0)
        sim.run()
        assert done[0] == pytest.approx(1.0)
        assert done[1] == pytest.approx(1.01)

    def test_invalid_rate_rejected(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            RateLimitedServer(sim, rate=0.0, queue_capacity=None, handler=lambda i: None)

    def test_fifo_service_order(self):
        sim = Simulator()
        done = []
        server = RateLimitedServer(sim, rate=50.0, queue_capacity=None, handler=done.append)
        for i in range(10):
            server.submit(i)
        sim.run()
        assert done == list(range(10))

    @given(st.integers(min_value=1, max_value=200))
    @settings(max_examples=20, deadline=None)
    def test_throughput_never_exceeds_rate(self, n):
        sim = Simulator()
        done = []
        server = RateLimitedServer(sim, rate=100.0, queue_capacity=None,
                                   handler=lambda item: done.append(sim.now))
        for i in range(n):
            server.submit(i)
        sim.run()
        assert len(done) == n
        # n items at 100/s must take at least (n)/100 seconds.
        assert done[-1] >= n / 100.0 - 1e-9


class TestTokenBucket:
    def test_burst_allowed_up_to_capacity(self):
        sim = Simulator()
        bucket = TokenBucket(sim, rate=1.0, capacity=3.0)
        assert [bucket.allow() for _ in range(4)] == [True, True, True, False]

    def test_refills_over_time(self):
        sim = Simulator()
        bucket = TokenBucket(sim, rate=2.0, capacity=2.0)
        bucket.allow()
        bucket.allow()
        assert bucket.allow() is False
        sim.schedule(1.0, lambda: None)
        sim.run()
        # 1 second at 2 tokens/s -> two more conformant packets.
        assert bucket.allow() is True
        assert bucket.allow() is True
        assert bucket.allow() is False

    def test_never_exceeds_capacity(self):
        sim = Simulator()
        bucket = TokenBucket(sim, rate=100.0, capacity=5.0)
        sim.schedule(10.0, lambda: None)
        sim.run()
        assert bucket.tokens == pytest.approx(5.0)

    def test_cost_parameter(self):
        sim = Simulator()
        bucket = TokenBucket(sim, rate=1.0, capacity=10.0)
        assert bucket.allow(cost=10.0) is True
        assert bucket.allow(cost=0.5) is False

    def test_counters(self):
        sim = Simulator()
        bucket = TokenBucket(sim, rate=1.0, capacity=1.0)
        bucket.allow()
        bucket.allow()
        assert bucket.allowed == 1
        assert bucket.denied == 1

    def test_invalid_params_rejected(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            TokenBucket(sim, rate=0, capacity=1)
        with pytest.raises(ValueError):
            TokenBucket(sim, rate=1, capacity=0)

    @given(
        st.lists(st.floats(min_value=0.001, max_value=1.0), min_size=1, max_size=50),
    )
    @settings(max_examples=30, deadline=None)
    def test_long_run_conformance(self, gaps):
        """Allowed traffic never exceeds capacity + rate * elapsed."""
        sim = Simulator()
        bucket = TokenBucket(sim, rate=10.0, capacity=5.0)
        allowed = 0
        now = 0.0
        for gap in gaps:
            now += gap
            sim.schedule_at(now, lambda: None)
            sim.run(until=now)
            if bucket.allow():
                allowed += 1
        assert allowed <= 5.0 + 10.0 * now + 1
