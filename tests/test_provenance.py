"""Causal provenance in the engine, and the flight recorder it feeds.

Contracts:

* Off by default — a plain run records nothing, pays nothing, and
  `current_event_id`/`ancestry` stay empty.
* On, every scheduled event knows its parent (the event whose callback
  scheduled it), `ancestry` walks the chain newest-first with a depth
  bound, and ids are compact `(run, seq)` pairs.
* Enabling provenance / the flight recorder must not change model
  results (the read-only contract postmortem bundles depend on).
* The flight recorder's rings are bounded, deterministic, and its
  counter-delta windows advance with `mark`.
"""

import json
from functools import partial

from repro.obs import Observability, observed
from repro.obs.flight import FlightRecorder
from repro.obs.metrics import MetricsRegistry
from repro.sim.engine import Simulator, callback_name
from repro.testbed.single_switch import SERVER_IP, build_single_switch
from repro.traffic import NewFlowSource


# ----------------------------------------------------------------------
# Engine provenance
# ----------------------------------------------------------------------
def test_provenance_off_by_default():
    sim = Simulator()
    seen = []
    sim.schedule(1.0, lambda: seen.append(sim.current_event_id))
    sim.run()
    assert not sim.provenance_enabled
    assert seen == [None]
    assert sim.ancestry() == []
    assert sim.event_info(0) is None


def test_parent_links_follow_the_scheduling_chain():
    sim = Simulator()
    chain = []

    def tail():
        chain.append(sim.ancestry())

    def middle():
        sim.schedule(1.0, tail)

    sim.enable_provenance(run=7)
    sim.schedule(1.0, middle)
    sim.run()
    (ancestry,) = chain
    # tail -> middle -> (root); newest first.
    assert [a["callback"] for a in ancestry] == [
        "test_parent_links_follow_the_scheduling_chain.<locals>.tail",
        "test_parent_links_follow_the_scheduling_chain.<locals>.middle",
    ]
    assert all(a["run"] == 7 for a in ancestry)
    # Root events (scheduled outside any callback) have no parent.
    assert ancestry[-1]["parent"] is None
    assert ancestry[0]["parent"] == ancestry[-1]["seq"]
    assert ancestry[0]["t"] == 2.0 and ancestry[-1]["t"] == 1.0


def test_current_event_id_is_live_only_during_dispatch():
    sim = Simulator()
    sim.enable_provenance()
    seen = []
    sim.schedule(0.5, lambda: seen.append(sim.current_event_id))
    assert sim.current_event_id is None
    sim.run()
    assert sim.current_event_id is None
    (event_id,) = seen
    assert event_id == (0, 0)
    info = sim.event_info(event_id[1])
    assert info["parent"] is None and info["t"] == 0.5


def test_ancestry_depth_bound():
    sim = Simulator()
    sim.enable_provenance()
    chains = []

    def step(depth):
        if depth:
            sim.schedule(1.0, step, depth - 1)
        else:
            chains.append(sim.ancestry(max_depth=5))

    sim.schedule(1.0, step, 20)
    sim.run()
    (chain,) = chains
    assert len(chain) == 5
    # A truncated chain still links upward: the oldest entry's parent
    # exists even though it was not returned.
    assert chain[-1]["parent"] is not None


def test_events_scheduled_before_enable_are_outside_the_dag():
    sim = Simulator()
    infos = []
    sim.schedule(1.0, lambda: infos.append(sim.ancestry()))
    sim.enable_provenance()
    sim.run()
    # The pre-enable event has no provenance record.
    assert infos == [[]]


def test_callback_name_is_deterministic():
    sim = Simulator()
    assert callback_name(sim.stop) == "Simulator.stop"
    assert callback_name(partial(sim.stop)) == "Simulator.stop"
    assert ".<lambda>" in callback_name(lambda: None)

    class Functor:
        def __call__(self):  # pragma: no cover - never invoked
            pass

    instance = Functor()
    # No __qualname__/func on the instance: fall back to the type name,
    # never repr() (which embeds memory addresses).
    assert callback_name(instance) == "Functor"
    assert "0x" not in callback_name(instance)


def test_provenance_does_not_change_model_results():
    def run(provenance):
        bed = build_single_switch(seed=5)
        if provenance:
            bed.sim.enable_provenance()
        NewFlowSource(bed.sim, bed.client, SERVER_IP, rate_fps=60.0).start(
            at=0.2, stop_at=1.2)
        bed.sim.run(until=2.0)
        return {
            "sent": bed.client.sent_tap.total_packets,
            "received": bed.server.recv_tap.total_packets,
            "pktin": bed.switch.ofa.packet_ins_sent,
            "events": bed.sim.events_fired,
            "now": bed.sim.now,
        }

    assert run(provenance=False) == run(provenance=True)


# ----------------------------------------------------------------------
# Flight recorder
# ----------------------------------------------------------------------
def test_flight_ring_is_bounded_and_keeps_the_newest():
    sim = Simulator()
    flight = FlightRecorder(events=4)
    flight.bind(sim, run=2)
    for index in range(10):
        sim.schedule(float(index + 1), lambda: None)
    sim.run()
    window = flight.window()
    assert len(window["events"]) == 4
    assert [e["t"] for e in window["events"]] == [7.0, 8.0, 9.0, 10.0]
    assert all(e["run"] == 2 for e in window["events"])
    assert all("<lambda>" in e["callback"] for e in window["events"])


def test_flight_counter_deltas_advance_with_mark():
    flight = FlightRecorder()
    registry = MetricsRegistry()
    errors = registry.counter("errors")
    flight.attach_metrics(registry)
    errors.inc(3)
    registry.counter("quiet")  # zero delta: omitted
    first = flight.window()
    assert first["metric_deltas"] == {"errors": 3}
    errors.inc(2)
    assert flight.window()["metric_deltas"] == {"errors": 2}
    # remark=False leaves the baseline, so the next window re-reports.
    errors.inc(1)
    assert flight.window(remark=False)["metric_deltas"] == {"errors": 1}
    assert flight.window()["metric_deltas"] == {"errors": 1}


def test_flight_window_is_json_serializable_and_plain():
    sim = Simulator()
    flight = FlightRecorder(events=8, spans=8)
    flight.bind(sim)
    flight.record_span({"type": "span", "name": "stage", "t0": 0.0, "t1": 1.0})
    sim.schedule(1.0, lambda: None)
    sim.run()
    window = flight.window()
    json.dumps(window)  # no object reprs, no non-serializable leftovers
    assert window["spans"][0]["name"] == "stage"


def test_observability_wires_causality_and_flight():
    obs = Observability(trace=True, metrics=True, causality=True, flight=32)
    assert obs.causality and obs.tracer.causality
    assert isinstance(obs.flight, FlightRecorder)
    assert obs.flight.events.maxlen == 32
    assert obs.tracer.flight is obs.flight
    with observed(obs):
        sim = Simulator()
        assert sim.provenance_enabled

        def work():
            sim.obs.tracer.end(sim.obs.tracer.begin("work"))

        sim.schedule(0.5, work)
        sim.run()
    assert len(obs.flight.events) == 1
    # The completed span reached the flight ring and carries its id +
    # the (run, seq) id of the event whose callback opened it.
    (record,) = list(obs.flight.spans)
    assert record["id"] == 0
    assert record["ev"] == [0, 0]


def test_causality_off_keeps_trace_records_unchanged():
    obs = Observability(trace=True, metrics=False)
    with observed(obs):
        sim = Simulator()
        sim.obs.tracer.end(sim.obs.tracer.begin("work"))
        sim.obs.tracer.instant("mark")
    for record in obs.tracer.records():
        assert "id" not in record
        assert "ev" not in record
