"""Tests for tunnels over the physical fabric."""

import pytest

from repro.net.host import Host
from repro.net.packet import Packet
from repro.net.topology import Network
from repro.net.tunnel import TUNNEL_RULE_PRIORITY, TunnelFabric
from repro.sim.engine import Simulator
from repro.switch.actions import GotoTable, Output, PopMpls
from repro.switch.profiles import HP_PROCURVE_6600
from repro.switch.switch import PhysicalSwitch, VSwitch


def build():
    sim = Simulator()
    net = Network(sim)
    for name in ("s0", "s1", "s2"):
        net.add(PhysicalSwitch(sim, name))
    net.add(VSwitch(sim, "v0"))
    net.link("s0", "s1")
    net.link("s1", "s2")
    net.link("v0", "s2")
    return sim, net, TunnelFabric(net)


def test_create_builds_transit_rules():
    sim, net, fabric = build()
    tunnel = fabric.create("s0", "v0")
    # Path: s0 -> s1 -> s2 -> v0; transit rules at s1 and s2.
    for transit in ("s1", "s2"):
        entries = net[transit].datapath.table(0).entries()
        labels = [e.match.fields.get("mpls_label") for e in entries]
        assert tunnel.tunnel_id in labels
        assert all(e.priority == TUNNEL_RULE_PRIORITY for e in entries)


def test_terminal_rule_pops_and_continues_pipeline():
    sim, net, fabric = build()
    tunnel = fabric.create("s0", "v0", terminal_pops=2)
    entries = net["v0"].datapath.table(0).entries()
    terminal = [e for e in entries if e.match.fields.get("mpls_label") == tunnel.tunnel_id]
    assert len(terminal) == 1
    actions = terminal[0].actions
    assert actions[:2] == [PopMpls(), PopMpls()]
    assert actions[2] == GotoTable(1)


def test_terminal_extra_actions_override_goto():
    sim, net, fabric = build()
    tunnel = fabric.create("s0", "v0", terminal_pops=1, terminal_extra_actions=[Output(9)])
    entries = net["v0"].datapath.table(0).entries()
    terminal = [e for e in entries if e.match.fields.get("mpls_label") == tunnel.tunnel_id]
    assert terminal[0].actions == [PopMpls(), Output(9)]


def test_idempotent_per_signature_distinct_otherwise():
    sim, net, fabric = build()
    t1 = fabric.create("s0", "v0", terminal_pops=2)
    t2 = fabric.create("s0", "v0", terminal_pops=2)
    t3 = fabric.create("s0", "v0", terminal_pops=1)
    assert t1 is t2
    assert t3.tunnel_id != t1.tunnel_id


def test_between_returns_all_matching_tunnels():
    sim, net, fabric = build()
    t1 = fabric.create("s0", "v0", terminal_pops=2)
    t2 = fabric.create("s0", "v0", terminal_pops=1)
    found = fabric.between("s0", "v0")
    assert {t.tunnel_id for t in found} == {t1.tunnel_id, t2.tunnel_id}


def test_unique_labels():
    sim, net, fabric = build()
    t1 = fabric.create("s0", "v0")
    t2 = fabric.create("s0", "s2")
    assert t1.tunnel_id != t2.tunnel_id


def test_end_to_end_packet_traversal():
    """A packet entering the tunnel at s0 must surface decapsulated at v0
    and continue the pipeline there (miss -> Packet-In)."""
    sim, net, fabric = build()
    tunnel = fabric.create("s0", "v0", terminal_pops=1)
    packet = Packet("10.0.0.1", "10.0.0.2", src_port=1, dst_port=2)
    net["s0"].datapath.execute_actions(packet, tunnel.entry_actions(net), in_port=1)
    sim.run()
    v0 = net["v0"]
    assert v0.ofa.packet_ins_sent + v0.ofa.packet_in_server.backlog() >= 1 or v0.datapath.punted == 1
    assert packet.encap == []
    assert packet.popped_labels == [tunnel.tunnel_id]
    assert "v0" in packet.hops


def test_tunnel_to_host_leaves_encap_for_nic():
    sim, net, fabric = build()
    host = net.add(Host(sim, "h", "10.9.9.9"))
    net.link("h", "s2")
    tunnel = fabric.create("s0", "h", terminal_pops=0)
    packet = Packet("10.0.0.1", "10.9.9.9")
    net["s0"].datapath.execute_actions(packet, tunnel.entry_actions(net), in_port=1)
    sim.run()
    # The host NIC strips residual encapsulation.
    assert host.recv_tap.total_packets == 1
    assert packet.encap == []


def test_transit_through_non_tunnel_switch_rejected():
    sim = Simulator()
    net = Network(sim)
    net.add(PhysicalSwitch(sim, "s0"))
    net.add(PhysicalSwitch(sim, "old", HP_PROCURVE_6600))  # no tunnel support
    net.add(VSwitch(sim, "v0"))
    net.link("s0", "old")
    net.link("old", "v0")
    fabric = TunnelFabric(net)
    with pytest.raises(ValueError):
        fabric.create("s0", "v0")


def test_same_node_endpoints_rejected():
    sim, net, fabric = build()
    with pytest.raises(ValueError):
        fabric.create("s0", "s0")


def test_hop_count():
    sim, net, fabric = build()
    tunnel = fabric.create("s0", "v0")
    assert tunnel.hop_count == 3
