"""Protocol and lifecycle details not covered elsewhere."""

import pytest

from repro.controller.controller import OpenFlowController
from repro.net.flow import FlowKey, FlowSpec
from repro.net.host import EchoServer, Host
from repro.net.topology import Network
from repro.openflow.messages import MODIFY, FlowMod
from repro.sim.engine import Simulator
from repro.switch.actions import Drop, Output
from repro.switch.match import Match
from repro.switch.profiles import IDEAL_SWITCH
from repro.switch.switch import PhysicalSwitch


def build_switch():
    sim = Simulator()
    net = Network(sim)
    sw = net.add(PhysicalSwitch(sim, "s0", IDEAL_SWITCH))
    controller = OpenFlowController(sim, net)
    controller.register_switch(sw)
    return sim, sw, controller


KEY = FlowKey("1.1.1.1", "2.2.2.2", 6, 10, 80)


def test_flow_mod_modify_replaces_actions():
    """OFPFC_MODIFY: same match+priority, new actions — the entry is
    replaced in place (same semantics as our ADD-upsert)."""
    sim, sw, controller = build_switch()
    sw.channel.send_to_switch(FlowMod(match=Match.for_flow(KEY), priority=100,
                                      actions=[Output(1)]))
    sim.run(until=0.5)
    sw.channel.send_to_switch(FlowMod(match=Match.for_flow(KEY), priority=100,
                                      actions=[Drop()], command=MODIFY))
    sim.run(until=1.0)
    entries = sw.datapath.table(0).entries()
    assert len(entries) == 1
    assert entries[0].actions == [Drop()]


def test_activation_resend_stops_after_withdrawal():
    """_send_activation re-sends are cancelled once the switch is no
    longer active (withdrawn between resends)."""
    from repro.testbed.deployment import build_deployment
    from repro.core.config import PRIORITY_SCOTCH_DEFAULT

    dep = build_deployment(seed=44)
    app = dep.scotch
    app.overlay.active.add("edge")
    app.groups_installed.add("edge")
    app._send_activation("edge", resends=2)
    # Withdraw immediately; the scheduled resends must no-op.
    app.overlay.active.discard("edge")
    dep.sim.run(until=1.0)
    # Only the first send's rules are present (no re-adds after removal
    # would matter — but crucially, no crash and no rules re-added later).
    before = len([e for e in dep.edge.datapath.table(0).entries()
                  if e.priority == PRIORITY_SCOTCH_DEFAULT])
    dep.sim.run(until=2.0)
    after = len([e for e in dep.edge.datapath.table(0).entries()
                 if e.priority == PRIORITY_SCOTCH_DEFAULT])
    assert before == after


def test_echo_server_acks_batched_trains_with_matching_count():
    sim = Simulator()
    net = Network(sim)
    client = net.add(Host(sim, "c", "10.0.0.1"))
    server = net.add(EchoServer(sim, "s", "10.0.0.2"))
    net.link("c", "s")
    key = FlowKey("10.0.0.1", "10.0.0.2", 6, 5, 80)
    client.start_flow(FlowSpec(key=key, start_time=0.1, size_packets=20,
                               rate_pps=200.0, batch=5))
    sim.run()
    assert server.acks_sent == 20  # count-aware (4 trains of 5)
    reverse = client.recv_tap.flow(key.reversed())
    assert reverse.packets_received == 20


def test_group_mod_helper_roundtrip():
    from repro.switch.group_table import Bucket

    sim, sw, controller = build_switch()
    controller.group_mod("s0", group_id=5, buckets=[Bucket([Output(1)])])
    sim.run(until=0.5)
    assert sw.datapath.groups.get(5) is not None
    controller.group_mod("s0", group_id=5, buckets=[], command="delete")
    sim.run(until=1.0)
    assert sw.datapath.groups.get(5) is None


def test_lazy_scheduler_uses_switch_profile_rate():
    """Host vSwitches admitted lazily get their own (fast) install rate,
    not the physical switches' R."""
    from repro.openflow.messages import PacketIn
    from repro.net.packet import Packet
    from repro.testbed.deployment import build_deployment

    dep = build_deployment(seed=45)
    app = dep.scotch
    hv = dep.host_vswitches[0]
    packet = Packet("10.0.9.1", dep.servers[0].ip, src_port=9, dst_port=80)
    app.packet_in(hv.name, PacketIn(datapath_id=hv.name, packet=packet, in_port=1))
    scheduler = app.schedulers[hv.name]
    assert scheduler.rate == hv.profile.install_lossless_rate
