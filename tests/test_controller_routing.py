"""Tests for the router and flow-info database."""

import pytest

from repro.controller.flow_info_db import (
    ROUTE_OVERLAY,
    ROUTE_PENDING,
    ROUTE_PHYSICAL,
    FlowInfoDatabase,
)
from repro.controller.routing import Router
from repro.net.flow import FlowKey
from repro.net.host import Host
from repro.net.topology import Network
from repro.sim.engine import Simulator
from repro.switch.actions import Output
from repro.switch.switch import PhysicalSwitch

KEY = FlowKey("10.0.0.1", "10.0.0.2", 6, 5, 80)


def build():
    sim = Simulator()
    net = Network(sim)
    for i in range(3):
        net.add(PhysicalSwitch(sim, f"s{i}"))
    net.link("s0", "s1")
    net.link("s1", "s2")
    net.add(Host(sim, "client", "10.0.0.1"))
    net.add(Host(sim, "server", "10.0.0.2"))
    net.link("client", "s0")
    net.link("server", "s2")
    return sim, net, Router(net)


class TestRouter:
    def test_host_lookup(self):
        _, net, router = build()
        assert router.host_for("10.0.0.2").name == "server"
        assert router.host_for("9.9.9.9") is None

    def test_attachment_switch(self):
        _, net, router = build()
        assert router.attachment_switch(net["server"]) == "s2"

    def test_path_to_includes_host(self):
        _, net, router = build()
        assert router.path_to("s0", "10.0.0.2") == ["s0", "s1", "s2", "server"]

    def test_path_to_unknown_host(self):
        _, net, router = build()
        assert router.path_to("s0", "8.8.8.8") is None

    def test_rules_last_hop_first(self):
        _, net, router = build()
        path = router.path_to("s0", "10.0.0.2")
        rules = router.rules_for_path(path, KEY)
        assert [r.dpid for r in rules] == ["s2", "s1", "s0"]
        for rule in rules:
            assert rule.match.is_exact_five_tuple
            assert isinstance(rule.actions[0], Output)

    def test_rules_output_ports_point_along_path(self):
        _, net, router = build()
        path = router.path_to("s0", "10.0.0.2")
        rules = {r.dpid: r for r in router.rules_for_path(path, KEY)}
        assert rules["s0"].actions[0].port_no == net.port_between("s0", "s1")
        assert rules["s2"].actions[0].port_no == net.port_between("s2", "server")

    def test_first_hop_in_port_pins_rule(self):
        _, net, router = build()
        path = router.path_to("s0", "10.0.0.2")
        rules = router.rules_for_path(path, KEY, first_hop_in_port=7)
        first_hop = rules[-1]
        assert first_hop.dpid == "s0"
        assert first_hop.match.fields["in_port"] == 7
        assert not first_hop.match.is_exact_five_tuple

    def test_refresh_hosts_picks_up_new_hosts(self):
        sim, net, router = build()
        net.add(Host(sim, "late", "10.0.0.3"))
        net.link("late", "s1")
        assert router.host_for("10.0.0.3") is None
        router.refresh_hosts()
        assert router.host_for("10.0.0.3").name == "late"


class TestFlowInfoDatabase:
    def test_record_and_lookup(self):
        db = FlowInfoDatabase()
        info = db.record(KEY, "s0", 3, now=1.0)
        assert info.route == ROUTE_PENDING
        assert db.get(KEY) is info
        assert KEY in db
        assert len(db) == 1

    def test_record_idempotent(self):
        db = FlowInfoDatabase()
        first = db.record(KEY, "s0", 3, now=1.0)
        second = db.record(KEY, "s9", 9, now=2.0)
        assert first is second
        assert second.first_hop_switch == "s0"

    def test_route_transitions_and_migrated_at(self):
        db = FlowInfoDatabase()
        db.record(KEY, "s0", 3, now=1.0)
        db.set_route(KEY, ROUTE_OVERLAY)
        db.set_route(KEY, ROUTE_PHYSICAL, now=5.0)
        assert db.get(KEY).migrated_at == 5.0

    def test_overlay_flows_via(self):
        db = FlowInfoDatabase()
        other = FlowKey("1.1.1.1", "2.2.2.2", 6, 1, 2)
        db.record(KEY, "s0", 1, now=0.0)
        db.record(other, "s1", 1, now=0.0)
        db.set_route(KEY, ROUTE_OVERLAY)
        db.set_route(other, ROUTE_OVERLAY)
        assert [i.key for i in db.overlay_flows_via("s0")] == [KEY]

    def test_counts(self):
        db = FlowInfoDatabase()
        db.record(KEY, "s0", 1, now=0.0)
        assert db.counts() == {ROUTE_PENDING: 1}

    def test_forget(self):
        db = FlowInfoDatabase()
        db.record(KEY, "s0", 1, now=0.0)
        db.forget(KEY)
        assert KEY not in db
        db.forget(KEY)  # idempotent
