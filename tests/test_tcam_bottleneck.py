"""The §3.3 claim: Scotch also mitigates the TCAM-capacity bottleneck.

"A limited amount of TCAM at a switch can also cause new flows being
dropped. ... the solution proposed in this paper is applicable to the
TCAM bottleneck scenario as well."

A switch with a tiny flow table saturates at (capacity / rule lifetime)
resident flows.  Single-packet flows slip through vanilla reactive
forwarding via cascaded Packet-Outs, so the scenario uses 10-packet
flows: their later packets need installed rules, which a full TCAM
rejects — vanilla delivers only first packets, while Scotch's TABLE_FULL
trigger detours whole flows onto the overlay, which needs *no per-flow
state* at the physical switches.
"""

import pytest

pytestmark = pytest.mark.slow

from repro.controller.reactive_app import ReactiveForwardingApp
from repro.openflow.messages import ErrorMessage
from repro.switch.profiles import PICA8_PRONTO_3780
from repro.testbed.deployment import build_deployment
from repro.traffic import NewFlowSource
from repro.traffic.sizes import FixedSize

#: 10 s rule lifetime x 100 f/s offered -> ~1000 resident rules, far over
#: this table capacity.
TINY_TCAM = PICA8_PRONTO_3780.variant(tcam_capacity=200)

FLOW_PACKETS = 10


def run(with_scotch: bool, seed=71, rate=100.0, until=25.0):
    dep = build_deployment(
        seed=seed, racks=2, mesh_per_rack=1,
        switch_profile=TINY_TCAM, add_scotch_app=with_scotch,
    )
    if not with_scotch:
        dep.controller.add_app(ReactiveForwardingApp())
    client = NewFlowSource(
        dep.sim, dep.client, dep.servers[0].ip, rate_fps=rate,
        sizes=FixedSize(size_packets=FLOW_PACKETS, rate_pps=200.0),
    )
    client.start(at=0.5, stop_at=until - 4.0)
    dep.sim.run(until=until)

    # A flow counts as failed unless (nearly) all of its packets arrived.
    recv = dep.servers[0].recv_tap
    measured = failed = 0
    for key, record in dep.client.sent_tap.records.items():
        if record.first_sent_at is None or not 8.0 <= record.first_sent_at < until - 5.0:
            continue
        measured += 1
        arrived = recv.flow(key)
        if arrived is None or arrived.packets_received < FLOW_PACKETS - 1:
            failed += 1
    return dep, (failed / measured if measured else 0.0)


def test_error_message_emitted_on_table_full():
    dep, _ = run(with_scotch=False, until=12.0)
    assert dep.edge.ofa.table_full_failures > 0
    assert dep.controller.errors_received > 0


def test_vanilla_truncates_flows_when_tcam_full():
    _, failure = run(with_scotch=False)
    assert failure > 0.5


def test_scotch_activates_on_table_full_and_protects():
    dep, failure = run(with_scotch=True)
    app = dep.scotch
    assert app.activations >= 1
    assert failure < 0.1


def test_scotch_overlay_needs_no_per_flow_tcam():
    dep, failure = run(with_scotch=True)
    counts = dep.scotch.flow_db.counts()
    # The steady state routes flows over the overlay (no rules at the
    # tiny-TCAM switches), with occasional physical probes as the
    # error-rate estimate decays.
    assert counts.get("overlay", 0) > 5 * counts.get("physical", 1)
    assert failure < 0.1


def test_monitor_table_full_rate_query():
    dep, _ = run(with_scotch=True, until=12.0)
    assert dep.scotch.monitor.table_full_rate("nonexistent") == 0.0
