"""Tests for synthetic traces."""

import random

import pytest

from repro.net.host import Host
from repro.net.topology import Network
from repro.sim.engine import Simulator
from repro.traffic.trace import TraceReplayer, generate_trace, read_trace, write_trace


def make_trace(duration=10.0, **kwargs):
    rng = random.Random(1)
    return generate_trace(
        rng,
        src_hosts=["h0", "h1"],
        dst_ips=["10.0.0.1", "10.0.0.2"],
        base_rate_fps=50.0,
        duration=duration,
        **kwargs,
    )


def test_records_sorted_and_within_duration():
    records = make_trace()
    times = [r.time for r in records]
    assert times == sorted(times)
    assert all(0 <= t < 10.0 for t in times)


def test_unique_five_tuples():
    records = make_trace()
    keys = [r.key for r in records]
    assert len(set(keys)) == len(keys)


def test_surge_raises_rate():
    records = make_trace(surge_start=4.0, surge_end=6.0, surge_multiplier=10.0)
    inside = sum(1 for r in records if 4.0 <= r.time < 6.0)
    outside = sum(1 for r in records if r.time < 2.0)
    assert inside > outside * 4


def test_sources_and_destinations_drawn_from_inputs():
    records = make_trace()
    assert {r.src_host for r in records} <= {"h0", "h1"}
    assert {r.key.dst_ip for r in records} <= {"10.0.0.1", "10.0.0.2"}


def test_csv_roundtrip(tmp_path):
    records = make_trace(duration=2.0)
    path = tmp_path / "trace.csv"
    write_trace(str(path), records)
    loaded = read_trace(str(path))
    assert len(loaded) == len(records)
    assert loaded[0].key == records[0].key
    assert loaded[0].time == pytest.approx(records[0].time, abs=1e-6)
    assert loaded[-1].size_packets == records[-1].size_packets


def test_empty_inputs_rejected():
    with pytest.raises(ValueError):
        generate_trace(random.Random(1), [], ["x"], 1.0, 1.0)


def test_replayer_schedules_all_flows():
    sim = Simulator()
    net = Network(sim)
    h0 = net.add(Host(sim, "h0", "10.9.0.1"))
    h1 = net.add(Host(sim, "h1", "10.9.0.2"))
    sink = net.add(Host(sim, "sink", "10.0.0.1"))
    net.link("h0", "sink")
    net.link("h1", "sink")
    records = [r for r in make_trace(duration=2.0) if r.key.dst_ip == "10.0.0.1"]
    replayer = TraceReplayer(sim, {"h0": h0, "h1": h1})
    replayer.schedule(records, offset=0.1)
    sim.run()
    assert replayer.flows_scheduled == len(records)
    assert len(sink.recv_tap.received_flow_keys()) == len(records)


def test_replayer_unknown_host_rejected():
    sim = Simulator()
    replayer = TraceReplayer(sim, {})
    with pytest.raises(KeyError):
        replayer.schedule(make_trace(duration=0.5))
