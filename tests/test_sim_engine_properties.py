"""Property tests for the event engine against a reference model."""

from hypothesis import given, settings, strategies as st

from repro.sim.engine import Simulator


@st.composite
def schedules(draw):
    """A batch of (delay, cancel_flag) operations."""
    n = draw(st.integers(min_value=1, max_value=40))
    delays = [draw(st.floats(min_value=0.0, max_value=100.0)) for _ in range(n)]
    cancels = [draw(st.booleans()) for _ in range(n)]
    return list(zip(delays, cancels))


@given(schedules())
@settings(max_examples=150, deadline=None)
def test_firing_order_matches_stable_sort(operations):
    """Events fire in (time, scheduling order); cancelled ones never fire.

    The reference model is a stable sort of the non-cancelled events by
    time — exactly what the heap + sequence-number tie-break promises.
    """
    sim = Simulator()
    fired = []
    events = []
    for index, (delay, _) in enumerate(operations):
        events.append(sim.schedule(delay, lambda i=index: fired.append(i)))
    for event, (_, cancel) in zip(events, operations):
        if cancel:
            event.cancel()
    sim.run()

    expected = [
        index
        for index, (_, __) in sorted(
            ((i, op) for i, op in enumerate(operations) if not op[1]),
            key=lambda pair: (pair[1][0], pair[0]),
        )
    ]
    assert fired == expected


@given(schedules())
@settings(max_examples=100, deadline=None)
def test_clock_is_monotone_and_matches_last_event(operations):
    sim = Simulator()
    times = []
    for delay, _ in operations:
        sim.schedule(delay, lambda: times.append(sim.now))
    sim.run()
    assert times == sorted(times)
    if times:
        assert sim.now == times[-1]


@given(schedules())
@settings(max_examples=100, deadline=None)
def test_cancel_settles_accounting_immediately(operations):
    """``pending`` drops the moment an event is cancelled (no deferred
    tombstone sweep), cancelling twice is a no-op, and a full run fires
    exactly the live events and drains every counter."""
    sim = Simulator()
    events = [sim.schedule(delay, lambda: None) for delay, _ in operations]
    live = len(events)
    for event, (_, cancel) in zip(events, operations):
        if cancel:
            event.cancel()
            event.cancel()  # idempotent: settles accounting only once
            live -= 1
        assert sim.pending == live
    # The calendar may still hold the tombstones (GC is lazy)…
    assert sim.heap_depth >= sim.pending
    sim.run()
    # …but a run fires exactly the live events, and peek garbage-collects
    # any trailing tombstones the run had no reason to consume.
    assert sim.events_fired == live
    assert sim.pending == 0
    assert sim.peek() is None
    assert sim.heap_depth == 0


@given(schedules())
@settings(max_examples=100, deadline=None)
def test_cancelled_events_never_hold_peek_or_run(operations):
    """``peek`` skips cancelled heads and ``run`` stops at the last
    *live* event — tombstones are invisible to both."""
    sim = Simulator()
    events = [sim.schedule(delay, lambda: None) for delay, _ in operations]
    live_times = []
    for event, (_, cancel) in zip(events, operations):
        if cancel:
            event.cancel()
        else:
            live_times.append(event.time)
    assert sim.peek() == (min(live_times) if live_times else None)
    assert sim.pending == len(live_times)  # peek's GC never touches accounting
    final = sim.run()
    assert final == (max(live_times) if live_times else 0.0)


@given(st.lists(st.sampled_from([0.0, 0.5, 1.0, 1.5, 2.0]), min_size=1, max_size=60))
@settings(max_examples=100, deadline=None)
def test_same_time_events_share_a_slot(times):
    """Same-timestamp events coalesce into one calendar slot: the heap
    holds one entry per distinct time, never one per event."""
    sim = Simulator()
    fired = []
    for index, time in enumerate(times):
        sim.schedule(time, lambda i=index: fired.append(i))
    assert len(sim._heap) == len(set(times))
    assert sim.heap_depth == len(times)
    sim.run()
    assert fired == [i for i, _ in sorted(enumerate(times), key=lambda p: (p[1], p[0]))]
    assert sim.now == max(times)


@given(schedules(), st.lists(st.booleans(), min_size=1, max_size=40))
@settings(max_examples=100, deadline=None)
def test_run_stops_when_only_daemons_remain(operations, daemon_flags):
    """A horizonless run fires events in order until no live foreground
    work remains; daemon housekeeping past that point never fires."""
    flags = [daemon_flags[i % len(daemon_flags)] for i in range(len(operations))]
    sim = Simulator()
    fired = []
    events = []
    for index, ((delay, _), daemon) in enumerate(zip(operations, flags)):
        events.append(
            sim.schedule(delay, lambda i=index: fired.append(i), daemon=daemon)
        )
    for event, (_, cancel) in zip(events, operations):
        if cancel:
            event.cancel()
    sim.run()

    # Reference model: walk (time, scheduling order); stop as soon as no
    # live foreground event is left ahead; cancelled events are silent.
    order = sorted(range(len(events)), key=lambda i: (events[i].time, i))
    remaining_fg = sum(
        1 for (_, cancel), daemon in zip(operations, flags) if not cancel and not daemon
    )
    expected = []
    for i in order:
        if remaining_fg == 0:
            break
        if operations[i][1]:
            continue
        expected.append(i)
        if not flags[i]:
            remaining_fg -= 1
    assert fired == expected


@given(st.lists(st.floats(min_value=0.001, max_value=10.0), min_size=1, max_size=20),
       st.integers(min_value=1, max_value=10))
@settings(max_examples=100, deadline=None)
def test_run_until_is_prefix_of_full_run(delays, horizon):
    """Running to a horizon then to completion fires the same sequence
    as one uninterrupted run."""
    def collect(step_at):
        sim = Simulator()
        fired = []
        for index, delay in enumerate(delays):
            sim.schedule(delay, lambda i=index: fired.append(i))
        if step_at is not None:
            sim.run(until=float(step_at))
        sim.run()
        return fired

    assert collect(horizon) == collect(None)
