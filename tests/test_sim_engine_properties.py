"""Property tests for the event engine against a reference model."""

from hypothesis import given, settings, strategies as st

from repro.sim.engine import Simulator


@st.composite
def schedules(draw):
    """A batch of (delay, cancel_flag) operations."""
    n = draw(st.integers(min_value=1, max_value=40))
    delays = [draw(st.floats(min_value=0.0, max_value=100.0)) for _ in range(n)]
    cancels = [draw(st.booleans()) for _ in range(n)]
    return list(zip(delays, cancels))


@given(schedules())
@settings(max_examples=150, deadline=None)
def test_firing_order_matches_stable_sort(operations):
    """Events fire in (time, scheduling order); cancelled ones never fire.

    The reference model is a stable sort of the non-cancelled events by
    time — exactly what the heap + sequence-number tie-break promises.
    """
    sim = Simulator()
    fired = []
    events = []
    for index, (delay, _) in enumerate(operations):
        events.append(sim.schedule(delay, lambda i=index: fired.append(i)))
    for event, (_, cancel) in zip(events, operations):
        if cancel:
            event.cancel()
    sim.run()

    expected = [
        index
        for index, (_, __) in sorted(
            ((i, op) for i, op in enumerate(operations) if not op[1]),
            key=lambda pair: (pair[1][0], pair[0]),
        )
    ]
    assert fired == expected


@given(schedules())
@settings(max_examples=100, deadline=None)
def test_clock_is_monotone_and_matches_last_event(operations):
    sim = Simulator()
    times = []
    for delay, _ in operations:
        sim.schedule(delay, lambda: times.append(sim.now))
    sim.run()
    assert times == sorted(times)
    if times:
        assert sim.now == times[-1]


@given(st.lists(st.floats(min_value=0.001, max_value=10.0), min_size=1, max_size=20),
       st.integers(min_value=1, max_value=10))
@settings(max_examples=100, deadline=None)
def test_run_until_is_prefix_of_full_run(delays, horizon):
    """Running to a horizon then to completion fires the same sequence
    as one uninterrupted run."""
    def collect(step_at):
        sim = Simulator()
        fired = []
        for index, delay in enumerate(delays):
            sim.schedule(delay, lambda i=index: fired.append(i))
        if step_at is not None:
            sim.run(until=float(step_at))
        sim.run()
        return fired

    assert collect(horizon) == collect(None)
