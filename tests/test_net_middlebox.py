"""Tests for stateful middleboxes."""

from repro.net.flow import FlowKey
from repro.net.middlebox import Firewall, LoadBalancerBox, Middlebox
from repro.net.node import Node
from repro.net.packet import TCP_DATA, TCP_SYN, Packet
from repro.net.topology import Network
from repro.sim.engine import Simulator


class Sink(Node):
    def __init__(self, sim, name):
        super().__init__(sim, name)
        self.packets = []

    def receive(self, packet, in_port):
        self.packets.append(packet)


def wire(sim, net, box):
    left = net.add(Sink(sim, "left"))
    right = net.add(Sink(sim, "right"))
    net.link("left", box.name)
    net.link(box.name, "right")
    return left, right


def syn(src="1.1.1.1", sport=10):
    return Packet(src, "2.2.2.2", src_port=sport, dst_port=80, tcp_flag=TCP_SYN)


def data(src="1.1.1.1", sport=10):
    return Packet(src, "2.2.2.2", src_port=sport, dst_port=80, tcp_flag=TCP_DATA)


def test_bump_in_the_wire_forwards_to_other_port():
    sim = Simulator()
    net = Network(sim)
    box = net.add(Middlebox(sim, "mb"))
    left, right = wire(sim, net, box)
    left.port_to("mb").send(syn())
    sim.run()
    assert len(right.packets) == 1
    right.port_to("mb").send(syn(src="9.9.9.9"))
    sim.run()
    assert len(left.packets) == 1


def test_firewall_admits_flow_seen_from_syn():
    sim = Simulator()
    net = Network(sim)
    fw = net.add(Firewall(sim, "fw"))
    left, right = wire(sim, net, fw)
    left.port_to("fw").send(syn())
    left.port_to("fw").send(data())
    sim.run()
    assert len(right.packets) == 2
    assert fw.rejected_unknown == 0


def test_firewall_drops_midflow_packets_of_unknown_flow():
    """The §5.4 motivation: a middlebox without pre-established context
    rejects mid-connection packets."""
    sim = Simulator()
    net = Network(sim)
    fw = net.add(Firewall(sim, "fw"))
    left, right = wire(sim, net, fw)
    left.port_to("fw").send(data())  # never saw the SYN
    sim.run()
    assert right.packets == []
    assert fw.rejected_unknown == 1


def test_firewall_admits_reverse_direction():
    sim = Simulator()
    net = Network(sim)
    fw = net.add(Firewall(sim, "fw"))
    left, right = wire(sim, net, fw)
    left.port_to("fw").send(syn())
    sim.run()
    reply = Packet("2.2.2.2", "1.1.1.1", src_port=80, dst_port=10, tcp_flag=TCP_DATA)
    right.port_to("fw").send(reply)
    sim.run()
    assert len(left.packets) == 1


def test_firewall_blocklist():
    sim = Simulator()
    net = Network(sim)
    fw = net.add(Firewall(sim, "fw"))
    left, right = wire(sim, net, fw)
    fw.blocklist.add("6.6.6.6")
    left.port_to("fw").send(syn(src="6.6.6.6"))
    sim.run()
    assert right.packets == []
    assert fw.rejected_blocked == 1


def test_firewall_knows():
    sim = Simulator()
    net = Network(sim)
    fw = net.add(Firewall(sim, "fw"))
    left, right = wire(sim, net, fw)
    key = FlowKey("1.1.1.1", "2.2.2.2", 6, 10, 80)
    assert not fw.knows(key)
    left.port_to("fw").send(syn())
    sim.run()
    assert fw.knows(key)
    assert fw.knows(key.reversed())


def test_load_balancer_pins_flow_to_backend():
    sim = Simulator()
    net = Network(sim)
    lb = net.add(LoadBalancerBox(sim, "lb", backends=["10.0.0.1", "10.0.0.2"]))
    left, right = wire(sim, net, lb)
    left.port_to("lb").send(syn())
    left.port_to("lb").send(data())
    sim.run()
    assert len(right.packets) == 2
    dsts = {p.dst_ip for p in right.packets}
    assert len(dsts) == 1  # both packets rewritten to the same backend
    assert dsts.pop() in ("10.0.0.1", "10.0.0.2")


def test_load_balancer_rejects_unpinned_midflow():
    sim = Simulator()
    net = Network(sim)
    lb = net.add(LoadBalancerBox(sim, "lb", backends=["10.0.0.1"]))
    left, right = wire(sim, net, lb)
    left.port_to("lb").send(data())
    sim.run()
    assert right.packets == []
    assert lb.rejected_unknown == 1


def test_processing_latency_applied():
    sim = Simulator()
    net = Network(sim)
    box = net.add(Middlebox(sim, "mb", latency=0.25))
    left, right = wire(sim, net, box)
    times = []
    right.receive = lambda p, i: times.append(sim.now)
    left.port_to("mb").send(syn())
    sim.run()
    assert times[0] >= 0.25
