"""Tests for ground-truth extraction and the detection scorecard — unit
tests on synthetic logs/timelines plus chaos-run integration (slow)."""

import json

import pytest

from repro.obs.rules import parse_rules
from repro.obs.scorecard import (
    FLASH_CROWD,
    TruthWindow,
    build_scorecard,
    firings_from_timeline,
    format_health_report,
    format_scorecard,
    render_html_report,
    scorecard_json,
    truth_windows,
)


def _firing(alert, t0, t1):
    return [
        {"t": t0, "alert": alert, "state": "firing", "sli": "s",
         "value": 1.0, "severity": "warning"},
        {"t": t1, "alert": alert, "state": "resolved", "sli": "s",
         "value": 0.0, "severity": "warning"},
    ]


# ----------------------------------------------------------------------
# Ground-truth windows
# ----------------------------------------------------------------------
def test_truth_windows_cover_every_log_shape():
    log = [
        # clear-closing fault
        {"t": 1.0, "kind": "channel_loss", "target": "edge", "phase": "inject"},
        {"t": 3.0, "kind": "channel_loss", "target": "edge", "phase": "clear"},
        # self-closing via duration (ofa_stall logs no clear)
        {"t": 2.0, "kind": "ofa_stall", "target": "s1", "phase": "inject",
         "duration": 1.5},
        # flap: the last "up" ends the window
        {"t": 5.0, "kind": "channel_flap", "target": "edge", "phase": "inject"},
        {"t": 5.1, "kind": "channel_flap", "target": "edge", "phase": "down"},
        {"t": 5.2, "kind": "channel_flap", "target": "edge", "phase": "up"},
        {"t": 5.6, "kind": "channel_flap", "target": "edge", "phase": "up"},
        # never cleared: stays open until run end
        {"t": 8.0, "kind": "vswitch_crash", "target": "v1", "phase": "inject"},
    ]
    windows = truth_windows(
        log, run_end=10.0,
        extra=(TruthWindow(FLASH_CROWD, "edge", 0.5, 9.0),))
    assert [(w.cls, w.target, w.t0, w.t1) for w in windows] == [
        (FLASH_CROWD, "edge", 0.5, 9.0),
        ("channel_loss", "edge", 1.0, 3.0),
        ("ofa_stall", "s1", 2.0, 3.5),
        ("channel_flap", "edge", 5.0, 5.6),
        ("vswitch_crash", "v1", 8.0, 10.0),
    ]


def test_firings_from_timeline_clamps_open_intervals():
    timeline = [{"t": 2.0, "alert": "r", "state": "firing", "sli": "s",
                 "value": 1.0, "severity": "warning"}]
    assert firings_from_timeline(timeline, run_end=5.0) == [("r", 2.0, 5.0)]


# ----------------------------------------------------------------------
# Scorecard join
# ----------------------------------------------------------------------
def test_build_scorecard_matching_latency_and_false_positives():
    rules = parse_rules(
        "loss_rule: s > 1 detects channel_loss\n"
        "dead_rule: s > 1 detects vswitch_crash\n")
    truth = [
        TruthWindow("channel_loss", "edge", 2.0, 4.0),
        TruthWindow("vswitch_crash", "v1", 6.0, 8.0),
    ]
    timeline = (_firing("loss_rule", 2.5, 4.5)    # overlap -> TP
                + _firing("loss_rule", 9.0, 9.5)  # matches nothing -> FP
                + _firing("dead_rule", 8.5, 9.0))  # within tolerance -> TP
    card = build_scorecard(rules, timeline, truth, run_end=10.0,
                           tolerance=1.0)
    assert card.classes["channel_loss"].detected == 1
    assert card.classes["channel_loss"].latencies == [0.5]
    assert card.classes["channel_loss"].detected_by == ["loss_rule"]
    assert card.classes["vswitch_crash"].detected == 1
    assert card.classes["vswitch_crash"].latencies == [2.5]
    assert card.rules["loss_rule"].firings == 2
    assert card.rules["loss_rule"].true_positives == 1
    assert card.false_positives == [("loss_rule", 9.0, 9.5)]
    assert card.recall == 1.0
    assert card.precision == pytest.approx(2 / 3)
    assert card.all_detected and not card.clean


def test_scorecard_misses_firings_outside_tolerance():
    rules = parse_rules("r: s > 1 detects channel_loss")
    truth = [TruthWindow("channel_loss", "edge", 1.0, 2.0)]
    card = build_scorecard(rules, _firing("r", 3.5, 4.0), truth,
                           run_end=5.0, tolerance=1.0)
    assert card.classes["channel_loss"].detected == 0
    assert card.recall == 0.0
    assert not card.all_detected
    # A late firing matching no window is also a false positive.
    assert card.false_positives == [("r", 3.5, 4.0)]


def test_scorecard_json_is_deterministic():
    rules = parse_rules("r: s > 1 detects channel_loss")
    truth = [TruthWindow("channel_loss", "edge", 1.0, 2.0)]
    card = build_scorecard(rules, _firing("r", 1.5, 2.5), truth, run_end=5.0)
    payload = json.loads(scorecard_json(card))
    assert payload["recall"] == 1.0
    assert payload["classes"]["channel_loss"]["detected_by"] == ["r"]
    assert payload["rules"]["r"]["true_positives"] == 1
    assert scorecard_json(card) == scorecard_json(card)


def test_reports_render_ascii_and_html(tmp_path):
    series = {"sli.a": [(0.0, 0.0), (1.0, 5.0), (2.0, 1.0)]}
    timeline = _firing("r", 0.5, 1.5)
    truth = (TruthWindow("channel_loss", "edge", 0.4, 1.2),)
    text = format_health_report(series, timeline, run_end=2.0, truth=truth)
    assert "sli.a" in text
    assert "r" in text and "channel_loss" in text
    card = build_scorecard(parse_rules("r: s > 1 detects channel_loss"),
                           timeline, list(truth), run_end=2.0)
    assert "Detection scorecard" in format_scorecard(card)
    path = str(tmp_path / "health.html")
    render_html_report(path, series, timeline, run_end=2.0, truth=truth,
                       scorecard=card)
    with open(path) as handle:
        html = handle.read()
    assert html.startswith("<!DOCTYPE html")
    assert "<svg" in html and "sli.a" in html
    assert "Detection scorecard" in html


# ----------------------------------------------------------------------
# Chaos integration (the acceptance criteria of the health engine)
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def health_report():
    from repro.faults import run_chaos

    return run_chaos(seed=1, health=True)


@pytest.mark.slow
@pytest.mark.chaos
def test_default_plan_full_recall_and_zero_false_positives(health_report):
    card = health_report.scorecard
    assert health_report.health_enabled
    assert card.recall == 1.0 and card.all_detected
    assert card.precision == 1.0 and card.clean
    assert set(card.classes) == {
        FLASH_CROWD, "channel_loss", "ofa_stall", "vswitch_crash",
        "channel_flap", "controller_outage",
    }
    # Every built-in rule fires for (at least) its own failure shape —
    # except estimator_starved, which watches the sampled-telemetry
    # export path and must stay inert under full polling (no staleness
    # gauges exist, so its SLI reads 0 for the whole run).
    assert card.rules["estimator_starved"].firings == 0
    assert all(score.firings > 0
               for name, score in card.rules.items()
               if name != "estimator_starved")
    assert all(score.true_positives == score.firings
               for score in card.rules.values())


@pytest.mark.slow
@pytest.mark.chaos
def test_fault_free_baseline_has_zero_false_positives():
    from repro.faults import FaultPlan, run_chaos

    report = run_chaos(seed=1, plan=FaultPlan(), health=True)
    card = report.scorecard
    assert card.clean
    # The flood is kept, so the only truth window is the synthetic
    # flash crowd — and the overload rule detecting it is a TP.
    assert list(card.classes) == [FLASH_CROWD]
    assert card.classes[FLASH_CROWD].detected == 1


@pytest.mark.slow
@pytest.mark.chaos
def test_same_seed_gives_byte_identical_alert_timeline(health_report):
    from repro.faults import run_chaos

    again = run_chaos(seed=1, health=True)
    assert again.alert_timeline_jsonl == health_report.alert_timeline_jsonl
    assert again.fault_log_jsonl == health_report.fault_log_jsonl


@pytest.mark.slow
@pytest.mark.chaos
def test_health_engine_does_not_perturb_the_model(health_report):
    from repro.faults import run_chaos

    plain = run_chaos(seed=1, health=False)
    assert not plain.health_enabled
    assert plain.scorecard is None
    assert plain.fault_log_jsonl == health_report.fault_log_jsonl
    assert plain.failure_during_faults == health_report.failure_during_faults
    assert plain.failure_post_recovery == health_report.failure_post_recovery
    assert plain.flows_started == health_report.flows_started
    assert plain.reliable == health_report.reliable
