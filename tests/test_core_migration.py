"""Unit-level tests for the elephant migrator (§5.3) on the deployment."""

import pytest

pytestmark = pytest.mark.slow

from repro.core.config import ScotchConfig
from repro.net.flow import FlowKey, FlowSpec
from repro.testbed.deployment import build_deployment
from repro.traffic import SpoofedFlood


def congested_deployment(seed=3, config=None, **kwargs):
    config = config or ScotchConfig(overlay_threshold=2)
    dep = build_deployment(seed=seed, racks=2, mesh_per_rack=1, config=config, **kwargs)
    flood = SpoofedFlood(dep.sim, dep.attacker, dep.servers[0].ip, rate_fps=1500.0)
    flood.start(at=0.5, stop_at=30.0)
    return dep


def start_elephant(dep, packets=3000, pps=500.0, at=3.0, sport=5555):
    key = FlowKey("10.99.0.99", dep.servers[0].ip, 6, sport, 80)
    dep.attacker.start_flow(
        FlowSpec(key=key, start_time=at, size_packets=packets, packet_size=1500,
                 rate_pps=pps, batch=10)
    )
    return key


def test_small_flows_never_migrate():
    dep = congested_deployment()
    key = start_elephant(dep, packets=50, pps=100.0)  # below the 200-pkt threshold
    dep.sim.run(until=10.0)
    assert dep.scotch.migrator.migrations_started == 0
    assert dep.scotch.flow_db.get(key).route == "overlay"


def test_elephant_detected_after_threshold_packets():
    dep = congested_deployment()
    key = start_elephant(dep, packets=3000, pps=500.0, at=3.0)
    dep.sim.run(until=12.0)
    info = dep.scotch.flow_db.get(key)
    assert info.route == "physical"
    # Detection cannot precede the threshold packet count: 200 pkts at
    # 500 pps is 0.4 s after start, plus a stats poll.
    assert info.migrated_at >= 3.0 + 0.4


def test_migration_is_idempotent_across_stats_polls():
    dep = congested_deployment()
    start_elephant(dep)
    dep.sim.run(until=12.0)
    migrator = dep.scotch.migrator
    assert migrator.migrations_started == 1
    assert migrator.migrations_completed == 1


def test_custom_elephant_threshold_respected():
    config = ScotchConfig(overlay_threshold=2, elephant_packet_threshold=100_000)
    dep = congested_deployment(config=config)
    key = start_elephant(dep)
    dep.sim.run(until=12.0)
    assert dep.scotch.migrator.migrations_started == 0
    assert dep.scotch.flow_db.get(key).route == "overlay"


def test_deferral_when_path_backlogged():
    # A tiny backlog limit forces at least one deferral under the flood's
    # downstream install pressure; the retry eventually lands it.
    config = ScotchConfig(overlay_threshold=2, migration_backlog_limit=0)
    dep = congested_deployment(config=config)
    key = start_elephant(dep, packets=6000, pps=500.0)
    dep.sim.run(until=16.0)
    migrator = dep.scotch.migrator
    assert migrator.migrations_deferred >= 1


def test_two_elephants_both_migrate():
    dep = congested_deployment()
    key_a = start_elephant(dep, sport=5555, at=3.0)
    key_b = start_elephant(dep, sport=6666, at=3.5)
    dep.sim.run(until=14.0)
    assert dep.scotch.flow_db.get(key_a).route == "physical"
    assert dep.scotch.flow_db.get(key_b).route == "physical"
    assert dep.scotch.migrator.migrations_completed == 2


def test_migrated_flow_keeps_delivering_after_overlay_rule_cleanup():
    dep = congested_deployment()
    key = start_elephant(dep, packets=4000, pps=500.0)
    dep.sim.run(until=16.0)
    record = dep.servers[0].recv_tap.flow(key)
    assert record.packets_received == 4000
    assert dep.scotch.flow_db.get(key).overlay_sites == []
