"""Unit tests for the fault-injection harness (plan + injector)."""

import json

import pytest

from repro.controller.base_app import BaseApp
from repro.controller.controller import OpenFlowController
from repro.faults import FaultPlan, FaultInjector
from repro.faults.plan import FaultEvent
from repro.net.topology import Network
from repro.openflow.messages import ADD, FlowMod
from repro.sim.engine import Simulator
from repro.sim.rng import RngRegistry
from repro.switch.actions import Output
from repro.switch.match import Match
from repro.switch.switch import VSwitch


# ----------------------------------------------------------------------
# FaultPlan
# ----------------------------------------------------------------------
def test_event_validation():
    with pytest.raises(ValueError):
        FaultEvent(1.0, "meteor_strike", "sw")
    with pytest.raises(ValueError):
        FaultEvent(-1.0, "vswitch_crash", "sw")
    with pytest.raises(ValueError):
        FaultEvent(1.0, "vswitch_crash", "sw", duration=-0.5)


def test_builder_validation():
    plan = FaultPlan()
    with pytest.raises(ValueError):
        plan.channel_loss(1.0, "sw", 1.0, direction="sideways")
    with pytest.raises(ValueError):
        plan.channel_flap(1.0, "sw", period=0.0)
    with pytest.raises(ValueError):
        plan.channel_flap(1.0, "sw", flaps=0)
    with pytest.raises(ValueError):
        plan.partition(1.0, [], 1.0)
    with pytest.raises(ValueError):
        plan.ofa_stall(1.0, "sw", duration=0.0)
    with pytest.raises(ValueError):
        plan.controller_outage(1.0, duration=0.0)
    assert len(plan) == 0  # nothing slipped in


def test_plan_keeps_events_sorted_and_reports_span():
    plan = (FaultPlan()
            .vswitch_crash(5.0, "b", down_for=2.0)
            .ofa_stall(1.0, "a", 1.5)
            .channel_flap(3.0, "a", period=0.5, flaps=2))
    times = [e.time for e in plan.events()]
    assert times == sorted(times) == [1.0, 3.0, 5.0]
    # channel_flap duration is 2 * period * flaps = 2.0, so the last
    # clearing fault is the crash restart at 5.0 + 2.0.
    assert plan.end_time() == pytest.approx(7.0)
    assert plan.kinds() == ("channel_flap", "ofa_stall", "vswitch_crash")


def test_randomized_plan_is_seed_deterministic():
    def make(seed):
        return FaultPlan.randomized(
            RngRegistry(seed), duration=20.0,
            channel_targets=["a", "b", "c"], vswitch_targets=["a", "b"],
            intensity=2.0,
        )

    assert make(7).events() == make(7).events()
    assert make(7).events() != make(8).events()
    plan = make(7)
    assert len(plan) == 8  # 4 * intensity
    assert all(e.time >= 1.0 for e in plan)


def test_randomized_plan_validation():
    with pytest.raises(ValueError):
        FaultPlan.randomized(RngRegistry(1), duration=0.5,
                             channel_targets=["a"], vswitch_targets=["a"])
    with pytest.raises(ValueError):
        FaultPlan.randomized(RngRegistry(1), duration=10.0,
                             channel_targets=[], vswitch_targets=["a"])


# ----------------------------------------------------------------------
# FaultInjector — minimal two-switch rig
# ----------------------------------------------------------------------
class _ResyncApp(BaseApp):
    def __init__(self):
        super().__init__()
        self.resyncs = 0

    def resync(self):
        self.resyncs += 1


def _rig():
    sim = Simulator(seed=3)
    network = Network(sim)
    sw_a = network.add(VSwitch(sim, "a"))
    sw_b = network.add(VSwitch(sim, "b"))
    controller = OpenFlowController(sim, network)
    controller.register_switch(sw_a)
    controller.register_switch(sw_b)
    app = controller.add_app(_ResyncApp())
    return sim, network, controller, sw_a, sw_b, app


def _flow_mod():
    return FlowMod(match=Match(dst_ip="10.0.0.1"), priority=50,
                   actions=[Output(1)], command=ADD)


def test_double_start_raises():
    sim, network, controller, *_ = _rig()
    injector = FaultInjector(sim, network, controller, FaultPlan())
    injector.start()
    with pytest.raises(RuntimeError):
        injector.start()


def test_crash_and_restart_wipes_dynamic_but_keeps_static_rules():
    sim, network, controller, sw_a, _, _ = _rig()
    sw_a.install_static(Match(dst_ip="10.9.9.9"), priority=10, actions=[Output(1)])
    sw_a.ofa.handle_from_controller(_flow_mod())
    plan = FaultPlan().vswitch_crash(1.0, "a", down_for=0.5)
    FaultInjector(sim, network, controller, plan).start()
    sim.run(until=0.5)
    assert len(sw_a.datapath.table(0)) == 2
    sim.run(until=1.2)
    assert not sw_a.alive and not sw_a.channel.connected
    sim.run(until=2.0)
    assert sw_a.alive and sw_a.channel.connected
    remaining = sw_a.datapath.table(0).entries()
    assert len(remaining) == 1  # dynamic rule wiped, static survived
    assert remaining[0].match.fields["dst_ip"] == "10.9.9.9"


def test_ofa_stall_defers_processing_until_the_stall_lifts():
    sim, network, controller, sw_a, _, _ = _rig()
    plan = FaultPlan().ofa_stall(1.0, "a", 1.0)
    FaultInjector(sim, network, controller, plan).start()
    sim.schedule(1.2, sw_a.ofa.handle_from_controller, _flow_mod())
    sim.run(until=1.5)
    assert sw_a.ofa.stall_deferred == 1
    assert len(sw_a.datapath.table(0)) == 0
    sim.run(until=2.5)
    assert len(sw_a.datapath.table(0)) == 1


def test_partition_disconnects_targets_then_heals():
    sim, network, controller, sw_a, sw_b, _ = _rig()
    plan = FaultPlan().partition(1.0, ["a", "b"], duration=1.0)
    FaultInjector(sim, network, controller, plan).start()
    sim.run(until=1.5)
    assert not sw_a.channel.connected and not sw_b.channel.connected
    sim.run(until=2.5)
    assert sw_a.channel.connected and sw_b.channel.connected


def test_flap_cycles_the_channel_the_scripted_number_of_times():
    sim, network, controller, sw_a, _, _ = _rig()
    plan = FaultPlan().channel_flap(1.0, "a", period=0.2, flaps=3)
    injector = FaultInjector(sim, network, controller, plan)
    injector.start()
    sim.run(until=5.0)
    assert sw_a.channel.disconnects == 3
    assert sw_a.channel.connected
    phases = [e["phase"] for e in injector.log if e["kind"] == "channel_flap"]
    assert phases == ["inject", "down", "up", "down", "up", "down", "up"]


def test_flap_up_does_not_resurrect_a_dead_switch():
    sim, network, controller, sw_a, _, _ = _rig()
    plan = FaultPlan().channel_flap(1.0, "a", period=0.2, flaps=1)
    FaultInjector(sim, network, controller, plan).start()
    sim.schedule(1.1, sw_a.fail)  # dies while the channel is down
    sim.run(until=3.0)
    assert not sw_a.channel.connected  # flap-up skipped the corpse


def test_channel_loss_installs_then_clears_impairments():
    sim, network, controller, sw_a, _, _ = _rig()
    plan = FaultPlan().channel_loss(1.0, "a", 1.0, loss=0.3,
                                    direction="to_switch")
    FaultInjector(sim, network, controller, plan).start()
    sim.run(until=1.5)
    assert sw_a.channel.impair_to_switch is not None
    assert sw_a.channel.impair_to_switch.loss == 0.3
    assert sw_a.channel.impair_to_controller is None  # directional
    sim.run(until=2.5)
    assert sw_a.channel.impair_to_switch is None


def test_controller_outage_severs_everything_then_resyncs_apps():
    sim, network, controller, sw_a, sw_b, app = _rig()
    plan = FaultPlan().controller_outage(1.0, duration=1.0)
    FaultInjector(sim, network, controller, plan).start()
    sim.schedule(1.5, sw_b.fail)  # dies mid-outage; must stay offline
    sim.run(until=1.4)
    assert not sw_a.channel.connected and not sw_b.channel.connected
    sim.run(until=3.0)
    assert sw_a.channel.connected
    assert not sw_b.channel.connected
    assert app.resyncs == 1


def test_log_structure_and_jsonl_round_trip():
    sim, network, controller, sw_a, _, _ = _rig()
    plan = (FaultPlan()
            .vswitch_crash(1.0, "a", down_for=0.5)
            .ofa_stall(2.0, "a", 0.5))
    injector = FaultInjector(sim, network, controller, plan)
    injector.start()
    sim.run(until=4.0)
    assert injector.injected == 2
    assert injector.counts == {"vswitch_crash": 1, "ofa_stall": 1}
    for entry in injector.log:
        assert list(entry)[:4] == ["t", "kind", "target", "phase"]
    lines = injector.log_jsonl().splitlines()
    assert [json.loads(line) for line in lines] == injector.log


def test_unknown_target_is_rejected():
    sim, network, controller, *_ = _rig()
    injector = FaultInjector(sim, network, controller, FaultPlan())
    with pytest.raises(KeyError):
        injector._switch("ghost")
