"""Tests for FlowRemoved generation and controller-state retirement."""

import pytest

from repro.controller.base_app import BaseApp
from repro.controller.controller import OpenFlowController
from repro.net.flow import FlowKey
from repro.net.topology import Network
from repro.openflow.messages import FlowMod, FlowRemoved
from repro.sim.engine import Simulator
from repro.switch.actions import Output
from repro.switch.match import Match
from repro.switch.profiles import IDEAL_SWITCH
from repro.switch.switch import PhysicalSwitch
from repro.testbed.deployment import build_deployment
from repro.traffic import NewFlowSource, SpoofedFlood

KEY = FlowKey("1.1.1.1", "2.2.2.2", 6, 10, 80)


class Collector(BaseApp):
    def __init__(self):
        super().__init__()
        self.removed = []

    def flow_removed(self, dpid, message):
        self.removed.append((dpid, message))


def build():
    sim = Simulator()
    net = Network(sim)
    sw = net.add(PhysicalSwitch(sim, "s0", IDEAL_SWITCH))
    controller = OpenFlowController(sim, net)
    controller.register_switch(sw)
    app = controller.add_app(Collector())
    return sim, sw, controller, app


def test_idle_timeout_emits_flow_removed():
    sim, sw, controller, app = build()
    controller.flow_mod("s0", Match.for_flow(KEY), 100, [Output(1)], idle_timeout=2.0)
    sim.run(until=5.0)
    assert len(app.removed) == 1
    dpid, message = app.removed[0]
    assert dpid == "s0"
    assert message.reason == "idle_timeout"
    assert message.match == Match.for_flow(KEY)
    assert len(sw.datapath.table(0)) == 0


def test_hard_timeout_reason():
    sim, sw, controller, app = build()
    controller.flow_mod("s0", Match.for_flow(KEY), 100, [Output(1)], hard_timeout=1.0)
    sim.run(until=3.0)
    assert app.removed[0][1].reason == "hard_timeout"


def test_notify_flag_off_is_silent():
    sim, sw, controller, app = build()
    mod = FlowMod(match=Match.for_flow(KEY), priority=100, actions=[Output(1)],
                  idle_timeout=1.0, notify_removal=False)
    controller.datapaths["s0"].send(mod)
    sim.run(until=3.0)
    assert app.removed == []
    assert len(sw.datapath.table(0)) == 0  # still expired, just silently


def test_static_rules_never_notify():
    sim, sw, controller, app = build()
    sw.install_static(Match.for_flow(KEY), 100, [Output(1)], idle_timeout=1.0)
    sim.run(until=3.0)
    assert app.removed == []


def test_counters_carried_in_message():
    sim, sw, controller, app = build()
    controller.flow_mod("s0", Match.for_flow(KEY), 100, [Output(1)], idle_timeout=1.5)
    from repro.net.packet import Packet

    def hit():
        sw.datapath.process(
            Packet(KEY.src_ip, KEY.dst_ip, proto=6, src_port=10, dst_port=80, size=500),
            in_port=1,
        )

    sim.schedule(0.5, hit)
    sim.run(until=5.0)
    message = app.removed[0][1]
    assert message.packets == 1
    assert message.bytes == 500
    assert message.duration > 1.0


def test_dead_switch_emits_nothing():
    sim, sw, controller, app = build()
    controller.flow_mod("s0", Match.for_flow(KEY), 100, [Output(1)], idle_timeout=1.0)
    sim.schedule(0.5, sw.fail)
    sim.run(until=5.0)
    assert app.removed == []


def test_scotch_retires_flow_state_after_rules_expire():
    dep = build_deployment(seed=41)
    sim = dep.sim
    client = NewFlowSource(sim, dep.client, dep.servers[0].ip, rate_fps=50.0)
    client.start(at=0.5, stop_at=3.0)
    sim.run(until=3.5)
    app = dep.scotch
    peak = len(app.flow_db)
    assert peak > 100
    # All flows were single packets; their 10 s idle rules expire.
    sim.run(until=20.0)
    assert app.flows_retired > 0
    assert len(app.flow_db) < peak * 0.1


def test_scotch_db_bounded_under_long_flood():
    dep = build_deployment(seed=41)
    sim = dep.sim
    flood = SpoofedFlood(sim, dep.attacker, dep.servers[0].ip, rate_fps=1500.0)
    flood.start(at=0.5, stop_at=28.0)
    sim.run(until=30.0)
    app = dep.scotch
    # ~41k flows offered; retirement keeps the live DB around the last
    # idle-timeout window's worth, not the whole history.
    assert app.flows_retired > 10_000
    assert len(app.flow_db) < 25_000
