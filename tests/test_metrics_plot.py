"""Tests for the ASCII chart helpers."""

from hypothesis import given, strategies as st

from repro.metrics.plot import ascii_plot, sparkline


class TestSparkline:
    def test_empty(self):
        assert sparkline([]) == ""

    def test_constant_series_is_flat(self):
        assert sparkline([5, 5, 5]) == "▁▁▁"

    def test_monotone_series_monotone_glyphs(self):
        line = sparkline([0, 1, 2, 3, 4, 5, 6, 7])
        assert line == "▁▂▃▄▅▆▇█"

    def test_extremes_hit_extreme_glyphs(self):
        line = sparkline([0, 100])
        assert line[0] == "▁" and line[-1] == "█"

    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=1, max_size=50))
    def test_length_preserved(self, values):
        assert len(sparkline(values)) == len(values)


class TestAsciiPlot:
    def test_empty(self):
        assert ascii_plot([]) == "(no data)"

    def test_contains_all_points_as_stars(self):
        points = [(0, 0), (1, 1), (2, 4), (3, 9)]
        chart = ascii_plot(points, width=20, height=8)
        assert chart.count("*") >= 3  # distinct cells (some may collide)

    def test_axis_labels_present(self):
        chart = ascii_plot([(0, 0), (10, 1)], x_label="rate", y_label="loss")
        assert "x: rate" in chart
        assert "y: loss" in chart
        assert "10" in chart  # x max on the axis

    def test_degenerate_single_point(self):
        chart = ascii_plot([(5, 5)])
        assert "*" in chart

    @given(st.lists(
        st.tuples(st.floats(min_value=0, max_value=1e3),
                  st.floats(min_value=0, max_value=1e3)),
        min_size=1, max_size=30))
    def test_never_crashes_and_has_grid(self, points):
        chart = ascii_plot(points, width=30, height=6)
        assert "|" in chart and "+" in chart
