"""Tests for the topology registry and path queries."""

import networkx as nx
import pytest

from repro.net.host import Host
from repro.net.topology import Network
from repro.sim.engine import Simulator
from repro.switch.switch import PhysicalSwitch


def build_line(n=4):
    sim = Simulator()
    net = Network(sim)
    for i in range(n):
        net.add(PhysicalSwitch(sim, f"s{i}"))
    for i in range(n - 1):
        net.link(f"s{i}", f"s{i+1}")
    return sim, net


def test_duplicate_node_rejected():
    sim = Simulator()
    net = Network(sim)
    net.add(PhysicalSwitch(sim, "s"))
    with pytest.raises(ValueError):
        net.add(PhysicalSwitch(sim, "s"))


def test_getitem_and_contains():
    sim, net = build_line()
    assert net["s0"].name == "s0"
    assert "s0" in net
    assert "zz" not in net


def test_shortest_path_line():
    _, net = build_line(4)
    assert net.shortest_path("s0", "s3") == ["s0", "s1", "s2", "s3"]


def test_shortest_path_prefers_low_delay():
    sim = Simulator()
    net = Network(sim)
    for name in ("a", "b", "c"):
        net.add(PhysicalSwitch(sim, name))
    net.link("a", "c", delay=10e-3)
    net.link("a", "b", delay=1e-3)
    net.link("b", "c", delay=1e-3)
    assert net.shortest_path("a", "c") == ["a", "b", "c"]


def test_port_between():
    _, net = build_line(2)
    port_no = net.port_between("s0", "s1")
    assert net["s0"].port(port_no).link.dst_node.name == "s1"
    with pytest.raises(KeyError):
        net.port_between("s0", "s0")


def test_excluded_node_not_used_as_transit():
    sim = Simulator()
    net = Network(sim)
    for name in ("a", "mb", "c"):
        net.add(PhysicalSwitch(sim, name))
    net.link("a", "mb", delay=1e-6)
    net.link("mb", "c", delay=1e-6)
    net.link("a", "c", delay=1.0)
    assert net.shortest_path("a", "c") == ["a", "mb", "c"]
    net.exclude_from_routing("mb")
    assert net.shortest_path("a", "c") == ["a", "c"]
    # Still allowed as an endpoint.
    assert net.shortest_path("a", "mb") == ["a", "mb"]


def test_explicit_exclude_parameter():
    _, net = build_line(3)
    with pytest.raises(nx.NetworkXNoPath):
        net.shortest_path("s0", "s2", exclude=["s1"])


def test_path_cache_invalidated_by_new_link():
    sim, net = build_line(3)
    assert net.shortest_path("s0", "s2") == ["s0", "s1", "s2"]
    net.link("s0", "s2", delay=1e-9)
    assert net.shortest_path("s0", "s2") == ["s0", "s2"]


def test_path_delay_sums_edges():
    sim = Simulator()
    net = Network(sim)
    for name in ("a", "b", "c"):
        net.add(PhysicalSwitch(sim, name))
    net.link("a", "b", delay=0.1)
    net.link("b", "c", delay=0.2)
    assert net.path_delay(["a", "b", "c"]) == pytest.approx(0.3)


def test_hop_ports():
    _, net = build_line(3)
    hops = net.hop_ports(["s0", "s1", "s2"])
    assert [h[0] for h in hops] == ["s0", "s1"]
    for node, port_no in hops:
        assert net[node].port(port_no).link is not None


def test_neighbors():
    _, net = build_line(3)
    assert set(net.neighbors("s1")) == {"s0", "s2"}


def test_hosts_participate_in_paths():
    sim, net = build_line(2)
    net.add(Host(sim, "h", "10.0.0.1"))
    net.link("h", "s0")
    assert net.shortest_path("h", "s1") == ["h", "s0", "s1"]
