"""Tests for the Barrier-acknowledged reliable-install layer."""

import pytest

from repro.controller.base_app import BaseApp
from repro.controller.controller import OpenFlowController
from repro.controller.reliability import ReliableSender
from repro.core.config import ScotchConfig
from repro.net.topology import Network
from repro.openflow.channel import LinkImpairments
from repro.openflow.messages import ADD, FlowMod, GroupMod
from repro.sim.engine import Simulator
from repro.switch.group_table import Bucket
from repro.switch.match import Match
from repro.switch.actions import Output
from repro.switch.switch import VSwitch


class _BarrierRelay(BaseApp):
    """Minimal app forwarding BarrierReplies to the sender under test."""

    def __init__(self):
        super().__init__()
        self.reliable = None

    def barrier_reply(self, dpid, message):
        self.reliable.barrier_reply(dpid, message)


def build(config=None):
    sim = Simulator(seed=2)
    network = Network(sim)
    switch = network.add(VSwitch(sim, "sw"))
    controller = OpenFlowController(sim, network)
    controller.register_switch(switch)
    relay = controller.add_app(_BarrierRelay())
    config = config or ScotchConfig(
        reliable_install_timeout=0.1,
        reliable_install_timeout_cap=0.4,
        reliable_install_max_retries=3,
    )
    sender = ReliableSender(sim, controller, config)
    relay.reliable = sender
    return sim, switch, sender


def _flow_mod():
    return FlowMod(match=Match(dst_ip="10.0.0.1"), priority=50,
                   actions=[Output(1)], command=ADD)


def test_healthy_channel_single_attempt_acked():
    sim, switch, sender = build()
    acks = []
    sender.send("sw", [_flow_mod()], on_ack=lambda: acks.append(sim.now))
    sim.run(until=2.0)
    assert sender.sent == 1
    assert sender.acked == 1
    assert sender.retries == 0
    assert acks and sender.pending() == 0
    assert len(switch.datapath.table(0)) == 1


def test_lossy_channel_retries_until_acked():
    sim, switch, sender = build(ScotchConfig(
        reliable_install_timeout=0.1,
        reliable_install_timeout_cap=0.4,
        reliable_install_max_retries=10,
    ))
    switch.channel.set_impairments(
        to_switch=LinkImpairments(loss=0.6),
        to_controller=LinkImpairments(loss=0.6),
    )
    sender.send("sw", [_flow_mod()])
    sim.run(until=10.0)
    # With 60% loss each way an attempt succeeds ~16% of the time; the
    # generous retry budget lets the batch land after several retries.
    assert sender.retries > 0
    assert sender.acked == 1
    assert sender.abandoned == 0
    assert len(switch.datapath.table(0)) == 1


def test_dead_channel_abandons_after_retry_budget():
    sim, switch, sender = build()
    switch.channel.disconnect()
    abandoned = []
    sender.send("sw", [_flow_mod()], on_abandon=lambda: abandoned.append(sim.now))
    sim.run(until=10.0)
    assert sender.acked == 0
    assert sender.abandoned == 1
    assert abandoned
    assert sender.pending() == 0
    # Retry budget: initial + max_retries attempts, no more.
    assert sender.retries == 3


def test_backoff_is_capped():
    sim, switch, sender = build(ScotchConfig(
        reliable_install_timeout=0.1,
        reliable_install_timeout_cap=0.2,
        reliable_install_max_retries=4,
    ))
    switch.channel.disconnect()
    abandoned = []
    sender.send("sw", [_flow_mod()], on_abandon=lambda: abandoned.append(sim.now))
    sim.run(until=10.0)
    # Timeouts: 0.1, 0.2, 0.2, 0.2, 0.2 = 0.9s total, not 0.1*2^4.
    assert abandoned and abandoned[0] == pytest.approx(0.9, abs=1e-6)


def test_keyed_send_supersedes_older_batch():
    sim, switch, sender = build()
    switch.channel.disconnect()  # keep the first batch retrying
    sender.send("sw", [_flow_mod()], key=("k",))
    acks = []

    def second():
        switch.channel.reconnect()
        sender.send("sw", [_flow_mod()], key=("k",), on_ack=lambda: acks.append(sim.now))

    sim.schedule(0.15, second)
    sim.run(until=5.0)
    assert sender.superseded == 1
    assert sender.acked == 1  # only the newer batch completes
    assert sender.abandoned == 0  # the stale one was retired, not abandoned
    assert acks


def test_no_duplicate_delivery_after_supersession():
    """A superseded batch's retries stop: the switch must not receive
    interleaved stale GroupMods during a flap."""
    sim, switch, sender = build()
    delivered = []
    original = switch.ofa.handle_from_controller

    def spy(message):
        if isinstance(message, GroupMod):
            delivered.append(message)
        original(message)

    switch.channel.switch_sink = spy

    def group(label):
        return GroupMod(group_id=1, group_type="select",
                        buckets=[Bucket(actions=[Output(1)], label=label)],
                        command=ADD)

    switch.channel.disconnect()
    sender.send("sw", [group("old")], key=("g",))
    sim.schedule(0.15, switch.channel.reconnect)
    sim.schedule(0.16, lambda: sender.send("sw", [group("new")], key=("g",)))
    sim.run(until=5.0)
    assert [g.buckets[0].label for g in delivered] == ["new"]


def test_reinstall_after_vswitch_restart_is_idempotent():
    """The restart wipes dynamic rules; a reliable re-send restores
    exactly one copy (FlowMod ADD replaces same match+priority)."""
    sim, switch, sender = build()
    sender.send("sw", [_flow_mod()])
    sim.run(until=1.0)
    assert len(switch.datapath.table(0)) == 1
    switch.fail()
    switch.restart()
    assert len(switch.datapath.table(0)) == 0  # dynamic state gone
    sender.send("sw", [_flow_mod()])
    sender.send("sw", [_flow_mod()])  # double re-send must not double rules
    sim.run(until=2.0)
    assert len(switch.datapath.table(0)) == 1
    assert sender.acked == 3


def test_unknown_datapath_is_a_noop():
    sim, switch, sender = build()
    sender.send("nonexistent", [_flow_mod()])
    sim.run(until=1.0)
    assert sender.pending() == 0
    assert sender.acked == 0


# ----------------------------------------------------------------------
# stop()/start() and explicit supersession (pool handoff + resync race)
# ----------------------------------------------------------------------
def test_stop_freezes_retries_start_resumes_backoff():
    sim, switch, sender = build(ScotchConfig(
        reliable_install_timeout=0.1,
        reliable_install_timeout_cap=0.4,
        reliable_install_max_retries=10,
    ))
    switch.channel.disconnect()
    sender.send("sw", [_flow_mod()])
    sim.run(until=0.35)  # attempts: t=0, 0.1, 0.3 -> 3 attempts in
    attempts_at_stop = sender.retries
    assert attempts_at_stop > 0
    sender.stop()
    sim.run(until=2.0)
    # Frozen: no retries fire while stopped.
    assert sender.retries == attempts_at_stop
    switch.channel.reconnect()
    sender.start()
    sim.run(until=4.0)
    assert sender.acked == 1
    assert sender.abandoned == 0
    assert len(switch.datapath.table(0)) == 1


def test_stop_start_cycles_under_sustained_loss_converge():
    sim, switch, sender = build(ScotchConfig(
        reliable_install_timeout=0.1,
        reliable_install_timeout_cap=0.4,
        reliable_install_max_retries=20,
    ))
    switch.channel.set_impairments(
        to_switch=LinkImpairments(loss=0.6),
        to_controller=LinkImpairments(loss=0.6),
    )
    acks = []
    sender.send("sw", [_flow_mod()], key=("k",),
                on_ack=lambda: acks.append(sim.now))
    for t in (0.15, 0.45, 0.8):
        sim.schedule(t, sender.stop)
        sim.schedule(t + 0.1, sender.start)
    sim.run(until=20.0)
    assert sender.acked == 1 and acks
    assert sender.abandoned == 0
    # Idempotent re-install: the table holds exactly one copy no matter
    # how many replays the stop/start cycles caused.
    assert len(switch.datapath.table(0)) == 1


def test_send_while_stopped_queues_until_start():
    sim, switch, sender = build()
    sender.stop()
    sender.send("sw", [_flow_mod()], key=("a",))
    sim.run(until=2.0)
    assert sender.acked == 0
    assert len(switch.datapath.table(0)) == 0  # nothing transmitted
    sender.start()
    sim.run(until=4.0)
    assert sender.acked == 1
    assert len(switch.datapath.table(0)) == 1


def test_keyed_supersession_applies_across_stop_start():
    sim, switch, sender = build()
    delivered = []
    original = switch.ofa.handle_from_controller

    def spy(message):
        if isinstance(message, GroupMod):
            delivered.append(message.buckets[0].label)
        original(message)

    switch.channel.switch_sink = spy

    def group(label):
        return GroupMod(group_id=1, group_type="select",
                        buckets=[Bucket(actions=[Output(1)], label=label)],
                        command=ADD)

    sender.stop()
    sender.send("sw", [group("old")], key=("g",))
    sender.send("sw", [group("new")], key=("g",))
    sender.start()
    sim.run(until=5.0)
    assert sender.superseded == 1
    assert sender.acked == 1
    assert delivered == ["new"]


def test_supersede_cancels_inflight_batch_without_replacement():
    sim, switch, sender = build()
    switch.channel.disconnect()
    sender.send("sw", [_flow_mod()], key=("k",))
    assert sender.supersede(("k",)) is True
    assert sender.supersede(("k",)) is False  # already gone
    switch.channel.reconnect()
    sim.run(until=10.0)
    # Neither acked nor abandoned: the batch was retired.
    assert sender.acked == 0 and sender.abandoned == 0
    assert sender.pending() == 0
    assert len(switch.datapath.table(0)) == 0


def test_supersede_all_retires_every_key():
    sim, switch, sender = build()
    switch.channel.disconnect()
    sender.send("sw", [_flow_mod()], key=("a",))
    sender.send("sw", [_flow_mod()], key=("b",))
    assert sender.supersede_all() == 2
    sim.run(until=10.0)
    assert sender.acked == 0 and sender.abandoned == 0
    assert sender.pending() == 0


def test_start_abandons_batches_with_exhausted_budget():
    # Timeouts 0.1/0.2/0.4/0.4: the 4th (final) attempt transmits at
    # t=0.7 with attempts == max_retries + 1.  A stop() inside that
    # window followed by start() must abandon, not replay — otherwise
    # the replay would push attempts past the invariant-checked budget.
    sim, switch, sender = build()
    switch.channel.disconnect()
    abandoned = []
    sender.send("sw", [_flow_mod()],
                on_abandon=lambda: abandoned.append(sim.now))
    sim.run(until=0.9)
    sender.stop()
    sender.start()
    assert abandoned and sender.abandoned == 1
    assert sender.max_attempts_in_flight() == 0


def test_restart_replay_is_idempotent_on_the_switch():
    sim, switch, sender = build()
    sender.send("sw", [_flow_mod()], key=("k",))
    sim.run(until=0.05)  # transmitted, barrier still in flight
    sender.stop()
    sender.start()       # replays the same batch
    sim.run(until=2.0)
    assert len(switch.datapath.table(0)) == 1  # ADD-as-replace, one copy
