"""Tests for named random streams."""

from repro.sim.rng import RngRegistry


def test_same_name_returns_same_stream():
    reg = RngRegistry(1)
    assert reg.stream("a") is reg.stream("a")


def test_streams_deterministic_across_registries():
    a = RngRegistry(7).stream("client").random()
    b = RngRegistry(7).stream("client").random()
    assert a == b


def test_streams_differ_by_name():
    reg = RngRegistry(7)
    assert reg.stream("a").random() != reg.stream("b").random()


def test_streams_differ_by_seed():
    assert RngRegistry(1).stream("x").random() != RngRegistry(2).stream("x").random()


def test_creation_order_does_not_perturb_streams():
    reg1 = RngRegistry(3)
    reg1.stream("first")
    value1 = reg1.stream("second").random()

    reg2 = RngRegistry(3)
    value2 = reg2.stream("second").random()  # created without "first"
    assert value1 == value2


def test_callable_shorthand():
    reg = RngRegistry(0)
    assert reg("x") is reg.stream("x")
